"""Tests for serving-shaped workloads: spec grammar, generators,
per-tenant QoS, determinism, and the ext_serving / obs integration."""

from __future__ import annotations

import io

import pytest

from tests.conftest import gated_config, small_config, small_fabric

from repro.experiments.runner import PointSpec, run_sweep
from repro.noc.backend import NEVER
from repro.noc.multinoc import MultiNocFabric
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.workloads.point import report_digest, run_serving_point
from repro.workloads.sources import (
    DEFAULT_DIURNAL_SHAPE,
    DiurnalSource,
    LlmServingSource,
    MultiTenantSource,
)
from repro.workloads.spec import (
    WorkloadSpec,
    make_workload_source,
    parse_workload_spec,
)

PHASES = SimulationPhases(warmup=60, measure=240, cooldown=60)


class TestSpecGrammar:
    def test_defaults_filled_in(self):
        spec = parse_workload_spec("tenants")
        assert spec.kind == "tenants"
        assert spec.get("rates") == (0.06, 0.03, 0.01)
        assert spec.get("scale") == 1.0

    def test_canonical_text_roundtrips(self):
        for text in (
            "llm:batch=4;seq=16",
            "tenants:rates=0.1,0.05",
            "diurnal:base=0.05;cycles_per_hour=100",
        ):
            spec = parse_workload_spec(text)
            assert parse_workload_spec(spec.to_text()) == spec

    def test_spellings_collapse_to_one_canonical_form(self):
        a = parse_workload_spec("llm:seq=16;batch=4")
        b = parse_workload_spec("llm:batch=4;seq=16")
        assert a == b
        assert a.to_text() == b.to_text()

    def test_trace_spec_keeps_path(self):
        spec = parse_workload_spec("trace:results/x.ctr")
        assert spec.kind == "trace"
        assert spec.get("path") == "results/x.ctr"
        assert spec.to_text() == "trace:results/x.ctr"

    def test_scaled_multiplies_scale(self):
        spec = parse_workload_spec("tenants:scale=0.5")
        assert spec.scaled(0.5).get("scale") == 0.25
        with pytest.raises(ValueError, match="cannot be scaled"):
            parse_workload_spec("trace:x.ctr").scaled(0.5)

    def test_rejects_garbage(self):
        for bad in (
            "",
            "warp",
            "llm:bogus=1",
            "llm:batch",
            "llm:batch=x",
            "tenants:rates=",
            "diurnal:shape=1,2,3",
            "trace:",
        ):
            with pytest.raises(ValueError):
                parse_workload_spec(bad)


class TestMultiTenant:
    def test_packets_tagged_and_reported_per_tenant(self):
        fabric = small_fabric()
        source = MultiTenantSource(fabric, rates=(0.1, 0.05), seed=3)
        report = run_open_loop(fabric, source, PHASES)
        assert [entry["tenant"] for entry in report.tenants] == [0, 1]
        heavy, light = report.tenants
        assert heavy["offered"] > light["offered"] > 0
        assert heavy["received"] > 0
        assert light["latency_p99"] >= light["latency_p50"] > 0

    def test_zero_rate_tenant_consumes_no_randomness(self):
        # Dropping a tenant to zero must not shift the other tenants'
        # schedules: each tenant draws from its own substream.
        def run(rates):
            fabric = small_fabric(seed=11)
            source = MultiTenantSource(fabric, rates=rates, seed=3)
            return report_digest(run_open_loop(fabric, source, PHASES))

        with_zero = run((0.1, 0.0))
        without = run((0.1, 0.0))
        assert with_zero == without

    def test_skip_horizon(self):
        fabric = small_fabric()
        active = MultiTenantSource(fabric, rates=(0.1,), seed=3)
        assert active.next_offer_cycle(7) == 7
        idle = MultiTenantSource(fabric, rates=(0.0, 0.0), seed=3)
        assert idle.next_offer_cycle(7) == NEVER


class TestLlmServing:
    def test_phase_schedule(self):
        fabric = small_fabric()
        source = LlmServingSource(
            fabric, batch=2, seq=4, token_cycles=2, gap=10, seed=3
        )
        # period = 16 prefill + 8 decode + 10 gap = 34
        assert source.phase(0) == "prefill"
        assert source.phase(15) == "prefill"
        assert source.phase(16) == "decode"
        assert source.phase(23) == "decode"
        assert source.phase(24) == "gap"
        assert source.phase(34) == "prefill"

    def test_gap_jumps_to_next_batch(self):
        fabric = small_fabric()
        source = LlmServingSource(
            fabric, batch=2, seq=4, token_cycles=2, gap=10, seed=3
        )
        assert source.next_offer_cycle(5) == 5
        assert source.next_offer_cycle(24) == 34  # gap -> next prefill
        assert source.next_offer_cycle(33) == 34

    def test_all_traffic_goes_to_memory_controllers(self):
        fabric = small_fabric()
        source = LlmServingSource(fabric, mcs=2, seed=3)
        destinations = set()
        original_offer = fabric.offer

        def spy(packet):
            destinations.add(packet.dst)
            assert packet.src not in source._is_mc
            original_offer(packet)

        fabric.offer = spy
        for cycle in range(80):
            source.step(cycle)
            fabric.step()
        assert destinations
        assert destinations <= set(source.mc_nodes)

    def test_zero_rate_source_never_offers(self):
        fabric = small_fabric()
        source = LlmServingSource(
            fabric, prefill_rate=0.0, decode_rate=0.0, seed=3
        )
        assert source.next_offer_cycle(0) == NEVER


class TestDiurnal:
    def test_load_follows_shape(self):
        fabric = small_fabric()
        source = DiurnalSource(
            fabric, base=0.1, cycles_per_hour=10, seed=3
        )
        assert source.current_load(0) == pytest.approx(
            0.1 * DEFAULT_DIURNAL_SHAPE[0]
        )
        # Hours 3 and 4 of the default shape are dead of night.
        assert source.current_load(30) == 0.0
        assert source.current_load(49) == 0.0
        assert source.current_load(50) > 0.0

    def test_horizon_skips_the_night(self):
        fabric = small_fabric()
        source = DiurnalSource(
            fabric, base=0.1, cycles_per_hour=10, seed=3
        )
        # From inside the trough, jump straight to hour 5's start.
        assert source.next_offer_cycle(31) == 50
        assert source.next_offer_cycle(49) == 50

    def test_night_puts_gated_subnets_to_sleep(self):
        fabric = MultiNocFabric(gated_config(), seed=3)
        source = DiurnalSource(
            fabric, base=0.15, cycles_per_hour=60, seed=3
        )
        # Run through the ramp-down into the dead of night (hours 0-4).
        phases = SimulationPhases(warmup=10, measure=290, cooldown=10)
        report = run_open_loop(fabric, source, phases)
        assert any(stats.sleep_cycles > 0 for stats in report.gating)

    def test_shape_must_have_24_entries(self):
        fabric = small_fabric()
        with pytest.raises(ValueError, match="24"):
            DiurnalSource(fabric, shape=(1.0, 0.5), seed=3)


class TestDeterminism:
    @pytest.mark.parametrize(
        "workload",
        [
            "tenants:rates=0.08,0.04",
            "llm:batch=2;seq=8;token_cycles=2;gap=40",
            "diurnal:base=0.1;cycles_per_hour=40",
        ],
    )
    def test_dense_and_skip_are_byte_identical(self, workload):
        digests = []
        for backend in ("dense", "skip"):
            fabric = MultiNocFabric(
                gated_config(), seed=9, backend=backend
            )
            source = make_workload_source(fabric, workload, seed=9)
            report = run_open_loop(fabric, source, PHASES)
            digests.append(report_digest(report))
        assert digests[0] == digests[1]

    def test_run_sweep_jobs_1_vs_2_identical(self):
        specs = [
            PointSpec.serving(
                small_config(),
                "tenants:rates=0.08,0.04",
                PHASES,
                seed=9,
            ),
            PointSpec.serving(
                small_config(),
                "llm:batch=2;seq=8",
                PHASES,
                seed=9,
            ),
        ]
        serial = run_sweep(specs, jobs=1, cache=None)
        parallel = run_sweep(specs, jobs=2, cache=None)
        assert serial == parallel

    def test_trace_content_hash_in_cache_key(self, tmp_path):
        from repro.traffic.trace import TraceRecord
        from repro.workloads.stream import StreamingTraceWriter

        path = tmp_path / "t.ctr"
        with StreamingTraceWriter(path, 4) as writer:
            writer.append(TraceRecord(0, 0, 1, 72, 0))
        spec_a = PointSpec.serving(
            small_config(), f"trace:{path}", PHASES
        )
        with StreamingTraceWriter(path, 4) as writer:
            writer.append(TraceRecord(0, 1, 2, 72, 0))
        spec_b = PointSpec.serving(
            small_config(), f"trace:{path}", PHASES
        )
        # Same path, different contents: must not share a cache entry.
        assert spec_a.digest() != spec_b.digest()


class TestServingPoint:
    def test_row_carries_tenants_and_sleep(self):
        row = run_serving_point(
            gated_config(),
            "tenants:rates=0.08,0.04",
            PHASES,
            seed=9,
        )
        assert row["workload"] == "tenants"
        assert [t["tenant"] for t in row["tenants"]] == [0, 1]
        assert len(row["sleep_frac"]) == 2
        assert all(0.0 <= f <= 1.0 for f in row["sleep_frac"])
        assert row["power_w"] > 0


class TestExtServing:
    def test_table_has_qos_and_sleep_columns(self):
        from repro.experiments.ext_serving import run_ext_serving

        result = run_ext_serving(scale=0.02)
        assert "tenant_p99" in result.columns
        assert "sleep_frac" in result.columns
        assert len(result.rows) == 24  # 12 hours x 2 configs
        peak = result.select(hour=18, config="4NT-128b-PG")[0]
        assert peak["load_mult"] == DEFAULT_DIURNAL_SHAPE[18]
        # The rendered table must not choke on the string cells.
        assert "tenant_p99" in result.to_table()

    def test_rejects_trace_workload(self):
        from repro.experiments.ext_serving import run_ext_serving

        with pytest.raises(ValueError, match="trace"):
            run_ext_serving(scale=0.02, workload="trace:x.ctr")


class TestCli:
    def test_gen_info_replay_roundtrip(self, tmp_path, capsys):
        from repro.workloads.cli import main

        out = tmp_path / "t.ctr"
        assert main([
            "gen", "--workload", "tenants:rates=0.1,0.05",
            "--config", "small", "--cycles", "4000",
            "--packets", "2000", "--out", str(out),
        ]) == 0
        assert main(["info", str(out)]) == 0
        assert "truncated" in capsys.readouterr().out
        assert main([
            "replay", str(out), "--config", "small",
            "--backend", "dense", "--rss-limit-mb", "4096",
        ]) == 0
        captured = capsys.readouterr().out
        assert "digest:" in captured
        assert "tenant 0:" in captured
        dense = [
            line for line in captured.splitlines()
            if line.startswith("digest:")
        ]
        assert main([
            "replay", str(out), "--config", "small",
            "--backend", "skip",
        ]) == 0
        skip = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("digest:")
        ]
        assert dense == skip

    def test_record_writes_a_replayable_trace(self, tmp_path, capsys):
        from repro.workloads.cli import main
        from repro.workloads.stream import StreamingTraceReader

        out = tmp_path / "r.ctr"
        assert main([
            "record", "--workload", "llm:batch=2;seq=4",
            "--config", "small", "--cycles", "300",
            "--out", str(out),
        ]) == 0
        capsys.readouterr()
        records = list(StreamingTraceReader(out))
        assert records
        assert all(r.cycle < 300 for r in records)

    def test_bad_workload_is_a_usage_error(self, tmp_path):
        from repro.workloads.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([
                "gen", "--workload", "bogus", "--config", "small",
                "--cycles", "10", "--out", str(tmp_path / "x.ctr"),
            ])
        assert excinfo.value.code == 2


class TestObsJoin:
    def test_rollup_carries_tenant_p99_and_sleep(self, tmp_path):
        from repro.obs.ledger import LedgerObserver
        from repro.obs.report import build_report, render_report

        observer = LedgerObserver(
            root=tmp_path, stream=io.StringIO()
        )
        specs = [
            PointSpec.serving(
                gated_config(),
                "tenants:rates=0.08,0.04",
                PHASES,
                seed=9,
            )
        ]
        run_sweep(specs, jobs=1, cache=None, observer=observer)
        assert observer.runs
        report = build_report(observer.runs[-1])
        row = report["rollup"]["rows"][0]
        assert row["status"] == "ok"
        assert len(row["tenant_p99"]) == 2
        assert all(p >= 0 for p in row["tenant_p99"])
        assert len(row["sleep_frac"]) == 2
        rendered = render_report(report)
        assert "tenant_p99" in rendered
