"""Tests for packets and flits."""

from __future__ import annotations

import pytest

from repro.noc.flit import Flit, MessageClass, Packet


class TestPacket:
    def test_latency_requires_reception(self):
        packet = Packet(src=0, dst=1, size_bits=512)
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_latency(self):
        packet = Packet(
            src=0, dst=1, size_bits=512,
            created_cycle=10, injected_cycle=12, received_cycle=30,
        )
        assert packet.latency == 20
        assert packet.network_latency == 18

    def test_network_latency_requires_injection(self):
        packet = Packet(src=0, dst=1, size_bits=512, received_cycle=5)
        with pytest.raises(ValueError):
            _ = packet.network_latency

    def test_unique_ids(self):
        a = Packet(src=0, dst=1, size_bits=8)
        b = Packet(src=0, dst=1, size_bits=8)
        assert a.packet_id != b.packet_id


class TestFlit:
    def test_single_flit_packet_flags(self):
        packet = Packet(src=0, dst=1, size_bits=72)
        flit = Flit(packet, is_head=True, is_tail=True, index=0)
        assert flit.is_head and flit.is_tail

    def test_defaults(self):
        packet = Packet(src=0, dst=1, size_bits=72)
        flit = Flit(packet, True, False, 0)
        assert flit.route == -1 and flit.vc == -1


class TestMessageClass:
    def test_all_classes_distinct(self):
        assert len(set(MessageClass.ALL)) == 4
