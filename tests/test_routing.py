"""Tests for X-Y look-ahead routing."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.noc.routing import XYRouting
from repro.noc.topology import ConcentratedMesh, Port


def make(cols=8, rows=8):
    return XYRouting(ConcentratedMesh(cols, rows))


class TestOutputPort:
    def test_local_at_destination(self):
        routing = make()
        for node in (0, 17, 63):
            assert routing.output_port(node, node) == Port.LOCAL

    def test_x_corrected_first(self):
        routing = make()
        mesh = routing.mesh
        src = mesh.node_at(0, 0)
        dst = mesh.node_at(3, 3)
        assert routing.output_port(src, dst) == Port.EAST

    def test_y_after_x_aligned(self):
        routing = make()
        mesh = routing.mesh
        src = mesh.node_at(3, 0)
        dst = mesh.node_at(3, 3)
        assert routing.output_port(src, dst) == Port.SOUTH

    def test_west_and_north(self):
        routing = make()
        mesh = routing.mesh
        assert (
            routing.output_port(mesh.node_at(5, 5), mesh.node_at(1, 5))
            == Port.WEST
        )
        assert (
            routing.output_port(mesh.node_at(5, 5), mesh.node_at(5, 1))
            == Port.NORTH
        )


class TestPath:
    def test_path_endpoints(self):
        routing = make()
        path = routing.path(0, 63)
        assert path[0] == 0 and path[-1] == 63

    def test_path_is_minimal(self):
        routing = make()
        mesh = routing.mesh
        for src, dst in [(0, 63), (7, 56), (10, 53)]:
            assert len(routing.path(src, dst)) == (
                mesh.hop_distance(src, dst) + 1
            )

    @given(
        st.integers(2, 8),
        st.integers(2, 8),
        st.data(),
    )
    def test_path_minimal_and_loop_free(self, cols, rows, data):
        routing = make(cols, rows)
        n = cols * rows
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        path = routing.path(src, dst)
        assert len(set(path)) == len(path), "path revisits a node"
        assert len(path) == routing.mesh.hop_distance(src, dst) + 1

    @given(st.data())
    def test_xy_order_no_y_before_x(self, data):
        routing = make()
        mesh = routing.mesh
        src = data.draw(st.integers(0, 63))
        dst = data.draw(st.integers(0, 63))
        path = routing.path(src, dst)
        turned = False
        for a, b in zip(path, path[1:]):
            ax, _ = mesh.coordinates(a)
            bx, _ = mesh.coordinates(b)
            if ax == bx:
                turned = True
            else:
                assert not turned, "X move after Y move violates XY order"


class TestTableExposure:
    def test_flat_table_matches_method(self):
        routing = make(4, 4)
        n = routing.num_nodes
        for current in range(n):
            for dst in range(n):
                assert (
                    routing.table[current * n + dst]
                    == routing.output_port(current, dst)
                )

    def test_next_hop_none_at_destination(self):
        routing = make(4, 4)
        assert routing.next_hop(5, 5) is None
