"""Tests for the sweep-execution layer (repro.experiments.runner).

Covers the ISSUE-1 guarantees: byte-identical rows between serial and
parallel execution, cache hit-on-rerun / miss-on-spec-change, observer
accounting, and a warm-cache figure rerun being >= 5x faster than the
cold run.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.experiments.common import synthetic_phases
from repro.experiments.runner import (
    CACHE_SCHEMA_VERSION,
    PointSpec,
    SweepCache,
    SweepObserver,
    env_jobs,
    run_sweep,
)
from repro.noc.config import NocConfig

TINY = synthetic_phases(0.04)


def tiny_specs(seed: int = 7, loads=(0.02, 0.10, 0.20, 0.30)):
    config = NocConfig.multi_noc(2)
    return [
        PointSpec.synthetic(config, "uniform", load, TINY, seed)
        for load in loads
    ]


class RecordingObserver(SweepObserver):
    def __init__(self):
        self.started_with = None
        self.finished = []
        self.failures = []
        self.stats = None

    def sweep_started(self, total):
        self.started_with = total

    def point_finished(self, index, spec, rows, elapsed, cached):
        self.finished.append((index, cached))

    def point_failed(self, index, spec, error):
        self.failures.append((index, error))

    def sweep_finished(self, stats):
        self.stats = stats


class TestPointSpec:
    def test_digest_is_stable_and_label_free(self):
        a, b = tiny_specs()[0], tiny_specs()[0]
        assert a.digest() == b.digest()
        assert a.with_label(variant="x").digest() == a.digest()

    def test_digest_changes_with_spec(self):
        spec = tiny_specs()[0]
        assert dataclasses.replace(spec, seed=99).digest() != spec.digest()
        assert (
            dataclasses.replace(spec, load=0.5).digest() != spec.digest()
        )

    def test_unknown_kind_rejected(self):
        from repro.experiments.runner import execute_point

        with pytest.raises(ValueError, match="unknown point kind"):
            execute_point(PointSpec(kind="nope"))

    def test_describe_names_the_point(self):
        text = tiny_specs()[0].describe()
        assert "2NT-256b" in text and "uniform" in text


class TestDeterminism:
    def test_serial_and_parallel_rows_identical(self):
        specs = tiny_specs()
        serial = run_sweep(specs, jobs=1, cache=None)
        parallel = run_sweep(specs, jobs=4, cache=None)
        assert serial == parallel

    def test_rows_are_labelled_in_spec_order(self):
        specs = [
            spec.with_label(order=i)
            for i, spec in enumerate(tiny_specs(loads=(0.02, 0.10)))
        ]
        rows = run_sweep(specs, jobs=2, cache=None)
        assert [row["order"] for row in rows] == [0, 1]


class TestCache:
    def test_hit_on_rerun(self, tmp_path):
        specs = tiny_specs(loads=(0.02, 0.10))
        cache = SweepCache(tmp_path)
        cold_obs, warm_obs = RecordingObserver(), RecordingObserver()
        cold = run_sweep(specs, jobs=1, cache=cache, observer=cold_obs)
        warm = run_sweep(specs, jobs=1, cache=cache, observer=warm_obs)
        assert cold == warm
        assert cold_obs.stats.cache_misses == 2
        assert warm_obs.stats.cache_hits == 2
        assert warm_obs.stats.cache_misses == 0

    def test_miss_on_spec_change(self, tmp_path):
        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)
        run_sweep([spec], jobs=1, cache=cache)
        changed = dataclasses.replace(spec, seed=8)
        obs = RecordingObserver()
        run_sweep([changed], jobs=1, cache=cache, observer=obs)
        assert obs.stats.cache_misses == 1

    def test_schema_version_guards_entries(self, tmp_path):
        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)
        rows = run_sweep([spec], jobs=1, cache=cache)
        assert cache.get(spec) == rows
        # Corrupt the stored schema version: must read as a miss.
        path = next(tmp_path.glob("*.json"))
        path.write_text(
            path.read_text().replace(
                f'"schema": {CACHE_SCHEMA_VERSION}',
                f'"schema": {CACHE_SCHEMA_VERSION + 1}',
            )
        )
        assert cache.get(spec) is None

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)
        run_sweep([spec], jobs=1, cache=cache)
        next(tmp_path.glob("*.json")).write_text("{not json")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(tiny_specs(loads=(0.02,)), jobs=1, cache=cache)
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_warm_fig06_rerun_is_5x_faster(self, tmp_path, monkeypatch):
        """Acceptance: warm-cache fig06 >= 5x faster than cold."""
        from repro.experiments.fig06_subnet_scaling import run_fig06

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        started = time.perf_counter()
        cold = run_fig06(scale=0.1)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_fig06(scale=0.1)
        warm_s = time.perf_counter() - started
        assert cold.rows == warm.rows
        assert warm_s * 5 <= cold_s, (cold_s, warm_s)


class TestFailureHandling:
    """Per-point crash capture: retry once serially, then surface."""

    def bad_spec(self):
        # Fails identically in workers and in the parent retry: the
        # executor raises on the unknown traffic pattern.
        config = NocConfig.multi_noc(2)
        return PointSpec.synthetic(config, "no-such-pattern", 0.1, TINY, 7)

    def test_transient_failure_is_retried_once(self, monkeypatch):
        from repro.experiments import runner as runner_mod

        real = runner_mod._EXECUTORS["synthetic"]
        calls = {"n": 0}

        def flaky(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker crash")
            return real(spec)

        monkeypatch.setitem(runner_mod._EXECUTORS, "synthetic", flaky)
        obs = RecordingObserver()
        rows = run_sweep(
            tiny_specs(loads=(0.02,)), jobs=1, cache=None, observer=obs
        )
        assert rows
        assert obs.stats.retried_points == 1
        assert obs.stats.failed_points == []
        assert obs.failures == []

    def test_permanent_failure_is_surfaced_not_raised(self):
        specs = tiny_specs(loads=(0.02, 0.10)) + [self.bad_spec()]
        obs = RecordingObserver()
        rows = run_sweep(specs, jobs=1, cache=None, observer=obs)
        assert len(obs.stats.failed_points) == 1
        index, error = obs.stats.failed_points[0]
        assert index == 2
        assert "ValueError" in error and "no-such-pattern" in error
        assert obs.failures == [(2, error)]
        # The healthy points still produced their rows.
        assert rows == run_sweep(
            tiny_specs(loads=(0.02, 0.10)), jobs=1, cache=None
        )

    def test_pool_failure_does_not_poison_other_points(self):
        specs = [self.bad_spec()] + tiny_specs(loads=(0.02, 0.10))
        obs = RecordingObserver()
        rows = run_sweep(specs, jobs=3, cache=None, observer=obs)
        assert [index for index, _ in obs.stats.failed_points] == [0]
        assert rows == run_sweep(
            tiny_specs(loads=(0.02, 0.10)), jobs=1, cache=None
        )

    def test_failed_points_never_enter_the_cache(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep([self.bad_spec()], jobs=1, cache=cache, observer=None)
        assert list(tmp_path.glob("*.json")) == []


class TestCacheCrashSafety:
    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(tiny_specs(loads=(0.02,)), jobs=1, cache=cache)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_truncated_file_reads_as_miss(self, tmp_path):
        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)
        run_sweep([spec], jobs=1, cache=cache)
        path = next(tmp_path.glob("*.json"))
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        assert cache.get(spec) is None

    def test_non_dict_payload_reads_as_miss(self, tmp_path):
        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)
        cache.put(spec, [{"latency": 1.0}])
        cache._path(spec).write_text("[1, 2, 3]")
        assert cache.get(spec) is None

    def test_failed_replace_cleans_up_temp_file(
        self, tmp_path, monkeypatch
    ):
        import os

        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            cache.put(spec, [{"latency": 1.0}])
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []
        assert cache.get(spec) is None

    def test_orphan_temp_files_are_invisible(self, tmp_path):
        spec = tiny_specs()[0]
        cache = SweepCache(tmp_path)
        cache.put(spec, [{"latency": 1.0}])
        (tmp_path / "orphanxyz.tmp").write_text("half-written")
        assert cache.get(spec) == [{"latency": 1.0}]
        assert cache.clear() == 1
        assert (tmp_path / "orphanxyz.tmp").exists()


class TestObserver:
    def test_callbacks_fire_per_point(self):
        obs = RecordingObserver()
        specs = tiny_specs(loads=(0.02, 0.10))
        run_sweep(specs, jobs=1, cache=None, observer=obs)
        assert obs.started_with == 2
        assert sorted(i for i, _ in obs.finished) == [0, 1]
        assert obs.stats.points == 2
        assert obs.stats.wall_seconds > 0
        assert len(obs.stats.point_seconds) == 2


class TestEnvJobs:
    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert env_jobs() == (os.cpu_count() or 1)
        assert env_jobs(default=3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert env_jobs() == 2

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            env_jobs()


class TestMultiRowKinds:
    def test_table02_expands_to_four_rows(self):
        rows = run_sweep([PointSpec.table02()], jobs=1, cache=None)
        assert len(rows) == 4
        assert {row["router_width_bits"] for row in rows} == {128, 512}

    def test_bursty_rows_survive_cache_round_trip(self, tmp_path):
        from repro.experiments.fig12_bursty import (
            SAMPLE_PERIOD,
            TOTAL_CYCLES,
            burst_schedule,
        )

        spec = PointSpec.bursty(
            NocConfig.multi_noc(4, power_gating=True),
            "uniform",
            tuple(burst_schedule()),
            sample_period=SAMPLE_PERIOD,
            total_cycles=TOTAL_CYCLES,
        )
        cache = SweepCache(tmp_path)
        cold = run_sweep([spec], jobs=1, cache=cache)
        warm = run_sweep([spec], jobs=1, cache=cache)
        assert cold == warm
        assert len(cold) == TOTAL_CYCLES // SAMPLE_PERIOD
