"""Integration tests: the paper's key behaviours at reduced scale.

These drive whole fabrics (and the closed loop) for thousands of
cycles, asserting the *shape* results Catnap claims rather than exact
numbers: where Catnap wins, where baselines lose, and how adaptation
behaves over time.
"""

from __future__ import annotations

import pytest

from repro.noc.config import NocConfig
from repro.noc.multinoc import MultiNocFabric
from repro.noc.simulator import SimulationPhases, run_open_loop
from repro.traffic.generators import BurstyTrafficSource, SyntheticTrafficSource
from repro.traffic.patterns import make_pattern

PHASES = SimulationPhases(300, 1200, 300)


def synth_report(config, load, pattern="uniform", seed=21):
    fabric = MultiNocFabric(config, seed=seed)
    source = SyntheticTrafficSource(
        fabric, make_pattern(pattern, fabric.mesh), load, seed=seed
    )
    return run_open_loop(fabric, source, PHASES)


class TestCatnapVsBaselines:
    def test_catnap_csc_beats_round_robin_at_low_load(self):
        catnap = synth_report(
            NocConfig.multi_noc(4, power_gating=True), 0.03
        )
        rr = synth_report(
            NocConfig.multi_noc(
                4, power_gating=True, selection_policy="round_robin"
            ),
            0.03,
        )
        assert catnap.csc_fraction > 0.5
        assert rr.csc_fraction < 0.45
        assert catnap.csc_fraction > rr.csc_fraction + 0.2

    def test_single_noc_pg_exposes_little_csc(self):
        report = synth_report(NocConfig.single_noc_512(True), 0.03)
        assert report.csc_fraction < 0.25

    def test_single_noc_pg_pays_latency_at_low_load(self):
        gated = synth_report(NocConfig.single_noc_512(True), 0.03)
        plain = synth_report(NocConfig.single_noc_512(), 0.03)
        assert gated.avg_packet_latency > plain.avg_packet_latency + 3

    def test_catnap_latency_penalty_small_at_low_load(self):
        gated = synth_report(NocConfig.multi_noc(4, power_gating=True), 0.03)
        plain = synth_report(
            NocConfig.multi_noc(4, selection_policy="round_robin"), 0.03
        )
        assert gated.avg_packet_latency < plain.avg_packet_latency + 15


class TestLoadAdaptation:
    def test_subnets_open_with_load(self):
        config = NocConfig.multi_noc(4, power_gating=True)
        low = synth_report(config, 0.03)
        high = synth_report(config, 0.32)
        assert low.subnet_injection_share[0] > 0.9
        assert high.subnet_injection_share[3] > 0.1

    def test_throughput_unaffected_by_gating_at_saturation(self):
        plain = synth_report(
            NocConfig.multi_noc(4, selection_policy="round_robin"), 0.38
        )
        gated = synth_report(NocConfig.multi_noc(4, power_gating=True), 0.38)
        assert gated.throughput_packets == pytest.approx(
            plain.throughput_packets, rel=0.15
        )

    def test_csc_decreases_with_load(self):
        config = NocConfig.multi_noc(4, power_gating=True)
        csc = [
            synth_report(config, load).csc_fraction
            for load in (0.03, 0.15, 0.32)
        ]
        assert csc[0] > csc[1] > csc[2]


class TestBurstAdaptation:
    def test_accepted_catches_burst_quickly(self):
        config = NocConfig.multi_noc(4, power_gating=True)
        fabric = MultiNocFabric(config, seed=33)
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.01), (500, 0.30)],
            seed=33,
        )
        received_at = {}
        while fabric.cycle < 1200:
            source.step(fabric.cycle)
            fabric.step()
            received_at[fabric.cycle] = fabric.stats.packets_received
        nodes = fabric.mesh.num_nodes
        # Accepted throughput over cycles 800-1200 (after ramp-up).
        late = (received_at[1199] - received_at[800]) / (399 * nodes)
        assert late > 0.24, "network must absorb the burst"

    def test_higher_subnets_power_gate_again_after_burst(self):
        config = NocConfig.multi_noc(4, power_gating=True)
        fabric = MultiNocFabric(config, seed=33)
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.30), (600, 0.01)],
            seed=33,
        )
        while fabric.cycle < 1600:
            source.step(fabric.cycle)
            fabric.step()
        from repro.noc.router import PowerState

        sleeping = sum(
            1
            for router in fabric.subnets[3].routers
            if router.power_state == PowerState.SLEEP
        )
        assert sleeping > fabric.mesh.num_nodes * 0.7


class TestRegionalVsLocal:
    def test_regional_detection_helps_transpose(self):
        """BFM-regional should not lose to BFM-local on transpose."""
        from dataclasses import replace
        from repro.noc.config import CongestionConfig

        base = NocConfig.multi_noc(4, power_gating=True)
        local_cfg = replace(
            base,
            congestion=replace(CongestionConfig(), use_regional=False),
        )
        regional = synth_report(base, 0.20, pattern="transpose")
        local = synth_report(local_cfg, 0.20, pattern="transpose")
        assert (
            regional.avg_packet_latency
            <= local.avg_packet_latency * 1.10
        )
