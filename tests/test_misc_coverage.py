"""Coverage for smaller public surfaces: env scaling, cache config,
report aggregation, chart selection."""

from __future__ import annotations

import pytest

from tests.conftest import gated_config, small_fabric

from repro.experiments.common import (
    ExperimentResult,
    env_scale,
    synthetic_phases,
)
from repro.noc.flit import Packet
from repro.noc.multinoc import MultiNocFabric
from repro.system.cache import TABLE1_CACHES, CacheConfig


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0
        assert env_scale(0.5) == 0.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert env_scale() == 0.25

    def test_rejects_non_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            env_scale()


class TestSyntheticPhases:
    def test_scaling_applies_to_all_phases(self):
        full = synthetic_phases(1.0)
        half = synthetic_phases(0.5)
        assert half.warmup == full.warmup // 2
        assert half.measure == full.measure // 2


class TestCacheConfig:
    def test_table1_values(self):
        assert TABLE1_CACHES.l1_size_kb == 32
        assert TABLE1_CACHES.l2_size_kb == 256
        assert TABLE1_CACHES.l2_ways == 16
        assert TABLE1_CACHES.block_bytes == 64

    def test_coherence_params_mapping(self):
        config = CacheConfig(l2_hit_rate=0.5, l2_latency=9)
        params = config.coherence_params()
        assert params.l2_hit_rate == 0.5
        assert params.l2_latency == 9
        assert params.l1_latency == config.l1_latency


class TestFabricReportAggregation:
    def test_csc_fraction_sums_subnets(self):
        fabric = MultiNocFabric(gated_config(), seed=2)
        for _ in range(120):
            fabric.step()
        report = fabric.report()
        # Subnet 1 sleeps, subnet 0 stays active: aggregate CSC must be
        # strictly between the two per-subnet fractions.
        s0 = report.gating[0].csc_fraction()
        s1 = report.gating[1].csc_fraction()
        assert s0 == 0.0 and s1 > 0.5
        assert s0 < report.csc_fraction < s1


class TestExperimentResultChart:
    def test_chart_with_criteria_filters(self):
        result = ExperimentResult(
            "n", "t",
            rows=[
                {"x": 1, "y": 5, "g": "a", "p": "u"},
                {"x": 2, "y": 9, "g": "a", "p": "u"},
                {"x": 1, "y": 100, "g": "a", "p": "t"},
            ],
        )
        chart = result.to_chart("x", "y", "g", p="u")
        assert "y: [5 .. 9]" in chart  # the p="t" row is filtered out

    def test_chart_no_match(self):
        result = ExperimentResult("n", "t", rows=[{"x": 1, "y": 2, "g": 1}])
        assert "no rows" in result.to_chart("x", "y", "g", missing=True)


class TestIdleNiFastPath:
    def test_idle_ni_does_not_inject(self):
        fabric = small_fabric()
        for _ in range(50):
            fabric.step()
        assert all(
            network.counters.flits_injected == 0
            for network in fabric.subnets
        )

    def test_wake_request_counter(self):
        fabric = MultiNocFabric(gated_config(), seed=2)
        for _ in range(30):
            fabric.step()
        fabric.offer(Packet(src=0, dst=15, size_bits=512))
        assert fabric.drain()
        # Catnap keeps subnet 0 awake; a single low-load packet should
        # not have needed any wakeups.
        assert fabric.gating.stats[0].wake_requests == 0
