"""Tests for the 32 nm voltage-frequency model (Table 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.power.technology import (
    max_frequency_ghz,
    min_voltage_for,
    table2_rows,
)


class TestTable2:
    def test_exact_paper_rows(self):
        rows = {
            (r.router_width_bits, r.voltage_v): r.frequency_ghz
            for r in table2_rows()
        }
        assert rows[(512, 0.750)] == 2.0
        assert rows[(512, 0.625)] == 1.4
        assert rows[(128, 0.750)] == 2.9
        assert rows[(128, 0.625)] == 2.0

    def test_highlighted_rows_are_2ghz(self):
        for row in table2_rows():
            if row.highlighted:
                assert row.frequency_ghz == 2.0

    def test_four_rows(self):
        assert len(table2_rows()) == 4


class TestFrequencyModel:
    @given(st.floats(0.45, 1.1), st.floats(0.45, 1.1))
    def test_monotone_in_voltage(self, v1, v2):
        if v1 > v2:
            v1, v2 = v2, v1
        assert max_frequency_ghz(256, v1) <= max_frequency_ghz(256, v2)

    @given(st.integers(32, 1024), st.integers(32, 1024))
    def test_decreasing_in_width(self, w1, w2):
        if w1 > w2:
            w1, w2 = w2, w1
        assert max_frequency_ghz(w1, 0.7) >= max_frequency_ghz(w2, 0.7)

    def test_rejects_voltage_below_threshold(self):
        with pytest.raises(ValueError):
            max_frequency_ghz(128, 0.2)


class TestMinVoltage:
    def test_narrower_router_needs_less_voltage(self):
        v128 = min_voltage_for(128, 2.0)
        v512 = min_voltage_for(512, 2.0)
        assert v128 < v512

    def test_paper_operating_points(self):
        assert min_voltage_for(512, 2.0) == pytest.approx(0.750, abs=0.01)
        assert min_voltage_for(128, 2.0) == pytest.approx(0.625, abs=0.01)

    @given(
        st.sampled_from([64, 128, 256, 512]),
        st.floats(0.5, 2.5),
    )
    def test_inverse_of_max_frequency(self, width, freq):
        voltage = min_voltage_for(width, freq)
        assert max_frequency_ghz(width, voltage) >= freq - 1e-6

    def test_unreachable_frequency_raises(self):
        with pytest.raises(ValueError):
            min_voltage_for(1024, 50.0)
