"""Whole-program contract checks: SIM101–SIM105 mutation tests.

Each test builds a *clean* miniature ``repro`` package (plus fixture
docs) in ``tmp_path``, plants exactly one contract violation, and
asserts the checker reports it — and, symmetrically, that the clean
tree and the real repository report nothing.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.cli import main as analysis_main
from repro.analysis.contracts import (
    CONTRACT_RULES,
    check_tree,
    default_docs_dir,
)
from repro.analysis.lint import LINT_RULES, Baseline, default_target

# ----------------------------------------------------------------------
# The clean fixture tree
# ----------------------------------------------------------------------

_BASE_FILES: dict[str, str] = {
    "repro/__init__.py": "",
    "repro/util/__init__.py": "",
    "repro/util/env.py": """
        import os
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class EnvVar:
            name: str
            kind: str
            default: str
            doc_page: str
            description: str


        REGISTRY: dict[str, EnvVar] = {}


        def _register(var: EnvVar) -> None:
            REGISTRY[var.name] = var


        _register(EnvVar("REPRO_BACKEND", "text", "dense", "index.md", "kernel"))


        def text(name: str, default: str = "") -> str:
            return os.environ.get(name, "") or default


        def flag(name: str) -> bool:
            return os.environ.get(name, "") not in ("", "0")
    """,
    "repro/noc/__init__.py": "",
    "repro/noc/router.py": """
        class Router:
            __slots__ = ("node", "credits")

            def __init__(self, node: int) -> None:
                self.node = node
                self.credits = 0
    """,
    "repro/noc/multinoc.py": """
        from repro.noc.backend import make_backend


        class FabricReport:
            def __init__(self, cycles: int, latency: float) -> None:
                self.cycles = cycles
                self.latency = latency


        class MultiNocFabric:
            def __init__(self, config) -> None:
                self.config = config
                self.cycle = 0
                self.stats = {}
                self.backend = make_backend("dense", self)

            def step(self) -> None:
                self.cycle += 1

            def run(self, cycles: int) -> None:
                self.backend.run(cycles)

            def report(self) -> FabricReport:
                return FabricReport(self.cycle, self._latency())

            def _latency(self) -> float:
                return 1.0
    """,
    "repro/noc/backend.py": """
        from repro.noc.multinoc import MultiNocFabric
        from repro.util import env


        class FabricBackend:
            name = "abstract"

            def __init__(self, fabric: MultiNocFabric) -> None:
                self.fabric = fabric

            def run(self, cycles: int) -> None:
                raise NotImplementedError


        class DenseBackend(FabricBackend):
            name = "dense"

            def run(self, cycles: int) -> None:
                fabric = self.fabric
                for _ in range(cycles):
                    fabric.step()


        def make_backend(name: str, fabric: MultiNocFabric):
            return DenseBackend(fabric)


        def backend_from_env() -> str:
            return env.text("REPRO_BACKEND", "dense")
    """,
    "repro/perf/__init__.py": "",
    "repro/perf/profiler.py": """
        from typing import Any

        from repro.noc.multinoc import MultiNocFabric


        class PhaseProfiler:
            def __init__(self, fabric: MultiNocFabric) -> None:
                self.fabric = fabric
                self._saved: list = []

            def _shadow(self, obj: Any, name: str, replacement: Any) -> None:
                had = name in obj.__dict__
                self._saved.append((obj, name, had, obj.__dict__.get(name)))
                setattr(obj, name, replacement)

            def attach(self) -> "PhaseProfiler":
                self._shadow(self.fabric, "step", self._profiled_step)
                return self

            def detach(self) -> None:
                for obj, name, had, value in reversed(self._saved):
                    if had:
                        setattr(obj, name, value)
                    else:
                        delattr(obj, name)
                self._saved.clear()

            def _profiled_step(self) -> None:
                pass
    """,
    "repro/telemetry/__init__.py": "",
    "repro/telemetry/hub.py": """
        from typing import Any

        from repro.noc.multinoc import MultiNocFabric


        class TelemetryHub:
            def __init__(self, fabric: MultiNocFabric) -> None:
                self.fabric = fabric
                self._saved: list = []

            def _shadow(self, obj: Any, name: str, replacement: Any) -> None:
                had = name in obj.__dict__
                self._saved.append((obj, name, had, obj.__dict__.get(name)))
                setattr(obj, name, replacement)

            def attach(self) -> "TelemetryHub":
                self._shadow(self.fabric, "step", self._telemetry_step)
                return self

            def detach(self) -> None:
                for obj, name, had, value in reversed(self._saved):
                    if had:
                        setattr(obj, name, value)
                    else:
                        delattr(obj, name)
                self._saved.clear()

            def _telemetry_step(self) -> None:
                pass
    """,
    "repro/analysis/__init__.py": "",
    "repro/analysis/invariants.py": """
        from repro.noc.multinoc import MultiNocFabric


        class InvariantChecker:
            def __init__(self, fabric: MultiNocFabric) -> None:
                self.fabric = fabric
                self._orig_step = None

            def attach(self) -> "InvariantChecker":
                fabric = self.fabric
                self._orig_step = fabric.step
                fabric.step = self._checked_step
                return self

            def detach(self) -> None:
                del self.fabric.step
                self._orig_step = None

            def _checked_step(self) -> None:
                self._orig_step()
    """,
    "repro/experiments/__init__.py": "",
    "repro/experiments/runner.py": """
        class PointSpec:
            def __init__(self, kind: str) -> None:
                self.kind = kind

            def key(self) -> dict:
                return {"kind": self.kind}
    """,
    "docs/architecture.md": """
        # Architecture

        <!-- backend-seams:begin -->

        | Seam     | Use            |
        | -------- | -------------- |
        | `step`   | per-cycle step |
        | `cycle`  | clock          |
        | `config` | parameters     |
        | `stats`  | counters       |

        <!-- backend-seams:end -->
    """,
    "docs/index.md": """
        # Index

        | Variable        | Effect             |
        | --------------- | ------------------ |
        | `REPRO_BACKEND` | selects the kernel |
    """,
}


def write_tree(
    tmp_path: Path, overrides: dict[str, str] | None = None
) -> tuple[Path, Path]:
    """Materialize the fixture tree; return (package root, docs dir)."""
    files = dict(_BASE_FILES)
    if overrides:
        files.update(overrides)
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content).lstrip("\n"))
    return tmp_path / "repro", tmp_path / "docs"


def src(rel: str) -> str:
    """Dedented source of a base fixture file, safe for string surgery."""
    return textwrap.dedent(_BASE_FILES[rel]).lstrip("\n")


def rules_of(
    tmp_path: Path, overrides: dict[str, str] | None = None
) -> list[str]:
    root, docs = write_tree(tmp_path, overrides)
    return [v.rule for v in check_tree(root, docs)]


# ----------------------------------------------------------------------
# Catalogue and clean trees
# ----------------------------------------------------------------------


def test_contract_rule_catalogue():
    assert sorted(CONTRACT_RULES) == [
        "SIM101", "SIM102", "SIM103", "SIM104", "SIM105",
    ]
    # The shared catalogue resolves severities and hints for both tools.
    for code, rule in CONTRACT_RULES.items():
        assert LINT_RULES[code] is rule
        assert rule.severity == "error"
        assert rule.hint


def test_clean_fixture_tree_passes(tmp_path):
    assert rules_of(tmp_path) == []


def test_real_repository_is_clean():
    violations = check_tree(default_target(), default_docs_dir())
    details = "\n".join(v.render(show_hint=False) for v in violations)
    assert not violations, f"contract violations in src/repro:\n{details}"


# ----------------------------------------------------------------------
# SIM101 — shadowing discipline
# ----------------------------------------------------------------------


def test_sim101_detects_missing_detach(tmp_path):
    profiler = src("repro/perf/profiler.py")
    head, _, _ = profiler.partition("    def detach")
    assert rules_of(
        tmp_path, {"repro/perf/profiler.py": head}
    ).count("SIM101") == 1


def test_sim101_detects_detach_that_skips_the_unwind(tmp_path):
    profiler = src("repro/perf/profiler.py")
    head, _, tail = profiler.partition("        for obj")
    _, _, rest = tail.partition("self._saved.clear()")
    planted = head + "        self._saved.clear()" + rest
    assert "SIM101" in rules_of(
        tmp_path, {"repro/perf/profiler.py": planted}
    )


def test_sim101_detects_unrestored_direct_shadow(tmp_path):
    checker = src("repro/analysis/invariants.py").replace(
        "del self.fabric.step\n        ", ""
    )
    assert "SIM101" in rules_of(
        tmp_path, {"repro/analysis/invariants.py": checker}
    )


def test_sim101_detects_attach_order_violation(tmp_path):
    wiring = """
        from repro.noc.multinoc import MultiNocFabric
        from repro.perf.profiler import PhaseProfiler
        from repro.telemetry.hub import TelemetryHub


        def instrument(fabric: MultiNocFabric) -> None:
            TelemetryHub(fabric).attach()
            PhaseProfiler(fabric).attach()
    """
    assert "SIM101" in rules_of(tmp_path, {"repro/wiring.py": wiring})


def test_sim101_accepts_documented_attach_order(tmp_path):
    wiring = """
        from repro.noc.multinoc import MultiNocFabric
        from repro.perf.profiler import PhaseProfiler
        from repro.analysis.invariants import InvariantChecker
        from repro.telemetry.hub import TelemetryHub


        def instrument(fabric: MultiNocFabric) -> None:
            PhaseProfiler(fabric).attach()
            InvariantChecker(fabric).attach()
            TelemetryHub(fabric).attach()
    """
    assert rules_of(tmp_path, {"repro/wiring.py": wiring}) == []


# ----------------------------------------------------------------------
# SIM102 — backend conformance
# ----------------------------------------------------------------------

_LAZY_BACKEND = """
    from repro.noc.backend import FabricBackend


    class LazyBackend(FabricBackend):
        %s
"""


def test_sim102_detects_missing_run_override(tmp_path):
    planted = _LAZY_BACKEND % 'name = "lazy"'
    assert "SIM102" in rules_of(
        tmp_path, {"repro/noc/lazy.py": planted}
    )


def test_sim102_detects_missing_registry_name(tmp_path):
    planted = _LAZY_BACKEND % (
        "def run(self, cycles: int) -> None:\n            pass"
    )
    assert "SIM102" in rules_of(
        tmp_path, {"repro/noc/lazy.py": planted}
    )


def test_sim102_detects_undocumented_seam_access(tmp_path):
    planted = src("repro/noc/backend.py").replace(
        "fabric.step()",
        "fabric.step()\n            fabric.monitor.poke()",
    )
    violations = [
        v
        for v in check_tree(*write_tree(
            tmp_path, {"repro/noc/backend.py": planted}
        ))
        if v.rule == "SIM102"
    ]
    assert violations and "monitor" in violations[0].message


def test_sim102_detects_documented_seam_that_vanished(tmp_path):
    docs = _BASE_FILES["docs/architecture.md"].replace(
        "| `stats`  | counters       |",
        "| `stats`  | counters       |\n| `bogus`  | gone           |",
    )
    violations = [
        v
        for v in check_tree(*write_tree(
            tmp_path, {"docs/architecture.md": docs}
        ))
        if v.rule == "SIM102"
    ]
    assert violations and "bogus" in violations[0].message
    assert violations[0].path == "docs/architecture.md"


def test_sim102_detects_missing_seam_block(tmp_path):
    assert "SIM102" in rules_of(
        tmp_path, {"docs/architecture.md": "# Architecture\n"}
    )


# ----------------------------------------------------------------------
# SIM103 — determinism taint reachable from the report / cache key
# ----------------------------------------------------------------------


def test_sim103_detects_set_iteration_reaching_report(tmp_path):
    planted = src("repro/noc/multinoc.py").replace(
        "return 1.0",
        "return float(sum(x for x in {1, 2, 3}))",
    )
    assert "SIM103" in rules_of(
        tmp_path, {"repro/noc/multinoc.py": planted}
    )


def test_sim103_detects_randomness_reaching_report(tmp_path):
    planted = src("repro/noc/multinoc.py").replace(
        "return 1.0",
        "import random\n        return random.random()",
    )
    assert "SIM103" in rules_of(
        tmp_path, {"repro/noc/multinoc.py": planted}
    )


def test_sim103_detects_wall_clock_reaching_cache_key(tmp_path):
    planted = src("repro/experiments/runner.py").replace(
        'return {"kind": self.kind}',
        'import time\n        return {"kind": self.kind, "t": time.time()}',
    )
    assert "SIM103" in rules_of(
        tmp_path, {"repro/experiments/runner.py": planted}
    )


def test_sim103_ignores_unreachable_nondeterminism(tmp_path):
    scratch = """
        def shuffle_debug(items) -> list:
            return [x for x in set(items)]
    """
    assert rules_of(tmp_path, {"repro/scratch.py": scratch}) == []


def test_sim103_allows_sorted_set_iteration(tmp_path):
    planted = src("repro/noc/multinoc.py").replace(
        "return 1.0",
        "return float(sum(x for x in sorted({1, 2, 3})))",
    )
    assert rules_of(
        tmp_path, {"repro/noc/multinoc.py": planted}
    ) == []


# ----------------------------------------------------------------------
# SIM104 — environment-variable registry
# ----------------------------------------------------------------------


def test_sim104_detects_unregistered_env_read(tmp_path):
    planted = src("repro/noc/backend.py").replace(
        'env.text("REPRO_BACKEND", "dense")',
        'env.text("REPRO_SECRET", "dense")',
    )
    violations = [
        v
        for v in check_tree(*write_tree(
            tmp_path, {"repro/noc/backend.py": planted}
        ))
        if v.rule == "SIM104"
    ]
    assert violations and "REPRO_SECRET" in violations[0].message


def test_sim104_detects_direct_environ_read(tmp_path):
    planted = src("repro/noc/backend.py").replace(
        'env.text("REPRO_BACKEND", "dense")',
        'os.environ.get("REPRO_BACKEND", "dense")',
    ).replace(
        "from repro.util import env",
        "import os\n\nfrom repro.util import env",
    )
    assert "SIM104" in rules_of(
        tmp_path, {"repro/noc/backend.py": planted}
    )


def test_sim104_allows_environ_writes(tmp_path):
    planted = src("repro/noc/backend.py") + textwrap.dedent(
        """

        import os


        def export_backend(name: str) -> None:
            os.environ["REPRO_BACKEND"] = name
        """
    )
    assert rules_of(
        tmp_path, {"repro/noc/backend.py": planted}
    ) == []


def test_sim104_detects_registry_missing_from_docs(tmp_path):
    planted = src("repro/util/env.py").replace(
        '_register(EnvVar("REPRO_BACKEND", "text", "dense", "index.md", "kernel"))',
        '_register(EnvVar("REPRO_BACKEND", "text", "dense", "index.md", "kernel"))\n'
        '_register(EnvVar("REPRO_EXTRA", "flag", "", "index.md", "extra"))',
    )
    violations = [
        v
        for v in check_tree(*write_tree(
            tmp_path, {"repro/util/env.py": planted}
        ))
        if v.rule == "SIM104"
    ]
    assert violations and "REPRO_EXTRA" in violations[0].message
    assert violations[0].path == "repro/util/env.py"


def test_sim104_detects_docs_entry_missing_from_registry(tmp_path):
    docs = _BASE_FILES["docs/index.md"] + (
        "| `REPRO_GHOST`   | undocumented knob  |\n"
    )
    violations = [
        v
        for v in check_tree(*write_tree(tmp_path, {"docs/index.md": docs}))
        if v.rule == "SIM104"
    ]
    assert violations and "REPRO_GHOST" in violations[0].message
    assert violations[0].path == "docs/index.md"


# ----------------------------------------------------------------------
# SIM105 — __slots__ hot-path attribute discipline
# ----------------------------------------------------------------------

_POKE = """
    from repro.noc.router import Router


    def poke(router: Router) -> None:
        router.%s = 1
"""


def test_sim105_detects_dynamic_attribute_from_outside(tmp_path):
    assert "SIM105" in rules_of(
        tmp_path, {"repro/perf/poke.py": _POKE % "scratch"}
    )


def test_sim105_allows_declared_slot_writes(tmp_path):
    assert rules_of(
        tmp_path, {"repro/perf/poke.py": _POKE % "credits"}
    ) == []


def test_sim105_allows_evolution_in_the_defining_module(tmp_path):
    planted = src("repro/noc/router.py") + textwrap.dedent(
        """

        def retire(router: Router) -> None:
            router.credits = 0
        """
    )
    assert rules_of(
        tmp_path, {"repro/noc/router.py": planted}
    ) == []


# ----------------------------------------------------------------------
# CLI and baseline integration
# ----------------------------------------------------------------------


def test_contracts_cli_default_run_is_green(capsys):
    assert analysis_main(["contracts"]) == 0
    capsys.readouterr()


def test_contracts_cli_reports_and_writes_artifact(tmp_path, capsys):
    root, docs = write_tree(
        tmp_path, {"repro/perf/poke.py": _POKE % "scratch"}
    )
    report = tmp_path / "out" / "contracts.json"
    code = analysis_main(
        [
            "contracts", str(root),
            "--docs", str(docs),
            "--no-baseline",
            "--output", str(report),
        ]
    )
    assert code == 1
    assert "SIM105" in capsys.readouterr().out
    payload = json.loads(report.read_text())
    assert payload[0]["rule"] == "SIM105"
    assert payload[0]["hint"]


def test_contracts_cli_baseline_round_trip(tmp_path, capsys):
    root, docs = write_tree(
        tmp_path, {"repro/perf/poke.py": _POKE % "scratch"}
    )
    baseline = tmp_path / "baseline.json"
    argv = ["contracts", str(root), "--docs", str(docs)]
    assert analysis_main(
        argv + ["--write-baseline", str(baseline)]
    ) == 0
    assert analysis_main(argv + ["--baseline", str(baseline)]) == 0
    # A second planted violation still fails against that baseline.
    (root / "telemetry" / "poke2.py").write_text(
        textwrap.dedent(_POKE % "scratch2").lstrip("\n")
    )
    assert analysis_main(argv + ["--baseline", str(baseline)]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# Baseline fingerprints: rename stability and deleted files
# ----------------------------------------------------------------------


def test_baseline_survives_file_rename(tmp_path):
    root, docs = write_tree(
        tmp_path, {"repro/perf/poke.py": _POKE % "scratch"}
    )
    baseline = Baseline.from_violations(check_tree(root, docs))
    assert baseline.entries

    (root / "perf" / "poke.py").rename(root / "perf" / "renamed.py")
    shifted = check_tree(root, docs)
    assert shifted  # still found, in the renamed file
    assert baseline.filter_new(shifted) == []


def test_baseline_ignores_entries_for_deleted_files(tmp_path):
    root, docs = write_tree(
        tmp_path,
        {
            "repro/perf/poke.py": _POKE % "scratch",
            "repro/telemetry/poke2.py": _POKE % "scratch2",
        },
    )
    baseline = Baseline.from_violations(check_tree(root, docs))
    assert len(baseline.entries) == 2

    (root / "telemetry" / "poke2.py").unlink()
    remaining = check_tree(root, docs)
    assert [v.rule for v in remaining] == ["SIM105"]
    assert baseline.filter_new(remaining) == []
