"""Tests for fabric configuration records."""

from __future__ import annotations

import pytest

from repro.noc.config import (
    AGGREGATE_WIDTH_BITS_256_CORE,
    DATA_PACKET_BITS,
    CongestionConfig,
    NocConfig,
    PowerGatingConfig,
    RouterTimingConfig,
)


class TestRouterTimingConfig:
    def test_hop_cycles(self):
        assert RouterTimingConfig(2, 1).hop_cycles == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            RouterTimingConfig(pipeline_cycles=0)


class TestPowerGatingConfig:
    def test_paper_constants(self):
        gating = PowerGatingConfig()
        assert gating.wakeup_cycles == 10
        assert gating.hidden_wakeup_cycles == 3
        assert gating.breakeven_cycles == 12
        assert gating.idle_detect_cycles == 4

    def test_hidden_must_not_exceed_wakeup(self):
        with pytest.raises(ValueError):
            PowerGatingConfig(wakeup_cycles=5, hidden_wakeup_cycles=6)


class TestCongestionConfig:
    def test_paper_thresholds(self):
        cc = CongestionConfig()
        assert cc.bfm_threshold_flits == 9
        assert cc.bfa_threshold_flits == 2.0
        assert cc.delay_threshold_cycles == 1.5
        assert cc.iqocc_threshold_flits == 4
        assert cc.rcs_update_period == 6

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            CongestionConfig(metric="bogus")


class TestNocConfig:
    def test_default_is_table1(self):
        config = NocConfig()
        assert config.num_nodes == 64
        assert config.num_cores == 256
        assert config.vcs_per_port == 4
        assert config.flits_per_vc == 4
        assert config.buffer_depth_flits == 16
        assert config.frequency_ghz == 2.0

    def test_flits_per_packet(self):
        config = NocConfig(link_width_bits=128)
        assert config.flits_per_packet(512) == 4
        assert config.flits_per_packet(72) == 1
        assert config.flits_per_packet(DATA_PACKET_BITS) == 5
        assert config.flits_per_packet(128) == 1
        assert config.flits_per_packet(129) == 2

    def test_flits_per_packet_rejects_zero(self):
        with pytest.raises(ValueError):
            NocConfig().flits_per_packet(0)

    def test_name_labels(self):
        assert NocConfig.single_noc_512().name == "1NT-512b"
        assert NocConfig.multi_noc(4).name == "4NT-128b"
        assert NocConfig.multi_noc(4, power_gating=True).name == (
            "4NT-128b-PG"
        )

    def test_aggregate_width_constant(self):
        for count in (1, 2, 4, 8):
            config = NocConfig.multi_noc(count)
            assert (
                config.aggregate_width_bits
                == AGGREGATE_WIDTH_BITS_256_CORE
            )

    def test_multi_noc_voltage_scaling_rule(self):
        assert NocConfig.multi_noc(4).voltage_v == 0.625
        assert NocConfig.multi_noc(1).voltage_v == 0.750
        assert NocConfig.multi_noc(2).voltage_v == 0.750

    def test_multi_noc_rejects_uneven_split(self):
        with pytest.raises(ValueError):
            NocConfig.multi_noc(3)

    def test_mesh_64_core(self):
        config = NocConfig.mesh_64_core(2)
        assert config.num_cores == 64
        assert config.link_width_bits == 128
        assert config.mesh_cols == config.mesh_rows == 4

    def test_with_power_gating_copy(self):
        base = NocConfig.single_noc_512()
        gated = base.with_power_gating()
        assert not base.gating.enabled
        assert gated.gating.enabled

    def test_with_policy_copy(self):
        config = NocConfig.multi_noc(4).with_policy("round_robin")
        assert config.selection_policy == "round_robin"

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            NocConfig(mesh_cols=0)
        with pytest.raises(ValueError):
            NocConfig(num_subnets=0)
