"""Tests for the Table 3 workload definitions."""

from __future__ import annotations

import pytest

from repro.system.workloads import (
    BENCHMARK_MPKI,
    WORKLOAD_MIXES,
    WORKLOAD_NAMES,
    workload,
)


class TestTable3Fidelity:
    @pytest.mark.parametrize(
        "name, mpki",
        [
            ("Light", 3.9),
            ("Medium-Light", 7.8),
            ("Medium-Heavy", 11.7),
            ("Heavy", 39.0),
        ],
    )
    def test_average_mpki_matches_paper(self, name, mpki):
        assert workload(name).average_mpki == pytest.approx(mpki, abs=0.01)

    def test_eight_benchmarks_per_mix(self):
        for name in WORKLOAD_NAMES:
            assert len(WORKLOAD_MIXES[name]) == 8

    def test_all_benchmarks_have_mpki(self):
        for mix in WORKLOAD_MIXES.values():
            for benchmark in mix:
                assert benchmark in BENCHMARK_MPKI

    def test_32_instances_each(self):
        spec = workload("Light")
        assert spec.instances_per_benchmark == 32


class TestCoreAssignment:
    def test_blocks_of_consecutive_cores(self):
        spec = workload("Light")
        assert spec.core_benchmark(0) == spec.core_benchmark(31)
        assert spec.core_benchmark(31) != spec.core_benchmark(32)

    def test_core_mpki_lookup(self):
        spec = workload("Heavy")
        assert spec.core_mpki(0) == BENCHMARK_MPKI["sjas"]

    def test_out_of_range_core(self):
        spec = workload("Light")
        with pytest.raises(ValueError):
            spec.core_benchmark(256)

    def test_64_core_variant(self):
        spec = workload("Light", num_cores=64)
        assert spec.instances_per_benchmark == 8


class TestValidation:
    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload("Ultra")

    def test_uneven_core_count(self):
        with pytest.raises(ValueError):
            workload("Light", num_cores=100)
