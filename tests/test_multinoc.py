"""End-to-end fabric tests: delivery, conservation, reporting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import gated_config, small_config, small_fabric

from repro.noc.flit import MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric


class TestDelivery:
    def test_every_packet_delivered(self, fabric):
        received = []
        fabric.packet_sink = lambda p, c: received.append(p.packet_id)
        packets = []
        for src in range(fabric.mesh.num_nodes):
            for dst in (0, 5, 15):
                if dst == src:
                    continue
                packet = Packet(src=src, dst=dst, size_bits=512)
                fabric.offer(packet)
                packets.append(packet)
        assert fabric.drain()
        assert sorted(received) == sorted(p.packet_id for p in packets)

    def test_offer_from_tile_maps_to_nodes(self, fabric):
        packet = fabric.offer_from_tile(0, 15, 512, MessageClass.REQUEST)
        assert packet.src == 0
        assert packet.dst == 3  # tile 15 -> node 3 (4 tiles/node)
        assert fabric.drain()
        assert packet.received_cycle >= 0

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_conservation_random_traffic(self, data):
        """Property: offered == received after drain, any traffic set."""
        fabric = small_fabric(seed=data.draw(st.integers(0, 1000)))
        n = fabric.mesh.num_nodes
        pairs = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, n - 1),
                    st.integers(0, n - 1),
                    st.sampled_from([72, 128, 512, 584]),
                ),
                max_size=40,
            )
        )
        offered = 0
        for src, dst, bits in pairs:
            if src == dst:
                continue
            fabric.offer(Packet(src=src, dst=dst, size_bits=bits))
            offered += 1
        assert fabric.drain()
        assert fabric.stats.packets_received == offered

    def test_conservation_with_power_gating(self):
        fabric = MultiNocFabric(gated_config(), seed=9)
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    fabric.offer(Packet(src=src, dst=dst, size_bits=512))
        assert fabric.drain()
        assert fabric.stats.packets_received == 16 * 15


class TestSubnetUsage:
    def test_catnap_uses_subnet0_at_low_load(self):
        fabric = small_fabric()
        for i in range(10):
            fabric.offer(Packet(src=0, dst=10, size_bits=72))
            for _ in range(20):
                fabric.step()
        shares = fabric.subnet_injection_share()
        assert shares[0] > 0.9

    def test_round_robin_spreads_evenly(self):
        fabric = small_fabric(selection_policy="round_robin")
        for i in range(40):
            fabric.offer(Packet(src=i % 16, dst=(i + 5) % 16, size_bits=72))
        assert fabric.drain()
        shares = fabric.subnet_injection_share()
        assert shares[0] == pytest.approx(0.5, abs=0.1)

    def test_share_empty_fabric(self, fabric):
        assert fabric.subnet_injection_share() == [0.0, 0.0]


class TestReport:
    def test_report_shape(self, fabric):
        fabric.offer(Packet(src=0, dst=3, size_bits=512))
        fabric.stats.begin_measurement(0)
        assert fabric.drain()
        fabric.stats.end_measurement(fabric.cycle)
        report = fabric.report()
        assert report.cycles == fabric.cycle
        assert len(report.activity) == 2
        assert len(report.gating) == 2
        assert report.packets_received == 1
        assert report.avg_packet_latency > 0

    def test_report_csc_zero_without_gating(self, fabric):
        fabric.run(20)
        assert fabric.report().csc_fraction == 0.0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run(seed):
            fabric = small_fabric(seed=seed)
            rng_packets = [
                (i % 16, (i * 7 + 3) % 16) for i in range(50)
            ]
            for src, dst in rng_packets:
                if src != dst:
                    fabric.offer(Packet(src=src, dst=dst, size_bits=512))
            assert fabric.drain()
            return (
                fabric.cycle,
                fabric.subnets[0].counters.link_traversals,
                fabric.subnets[1].counters.link_traversals,
            )

        assert run(7) == run(7)

    def test_different_policies_differ(self):
        """Round-robin and Catnap produce different subnet usage."""
        def shares(policy):
            fabric = small_fabric(selection_policy=policy)
            for i in range(60):
                fabric.offer(
                    Packet(src=i % 16, dst=(i + 3) % 16, size_bits=512)
                )
            assert fabric.drain()
            return fabric.subnet_injection_share()

        assert shares("catnap")[0] > shares("round_robin")[0]


class TestHopCounts:
    def test_hops_equal_manhattan_distance(self):
        """Under X-Y routing every packet's hop count is exact."""
        fabric = small_fabric()
        received = []
        fabric.packet_sink = lambda packet, cycle: received.append(packet)
        mesh = fabric.mesh
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                if src != dst:
                    fabric.offer(Packet(src=src, dst=dst, size_bits=512))
        assert fabric.drain()
        assert received
        for packet in received:
            sx, sy = mesh.coordinates(packet.src)
            dx, dy = mesh.coordinates(packet.dst)
            assert packet.hops == abs(sx - dx) + abs(sy - dy)

    def test_report_carries_avg_hops_per_subnet(self):
        fabric = small_fabric()
        for i in range(40):
            fabric.offer(
                Packet(src=i % 16, dst=(i + 5) % 16, size_bits=512)
            )
        assert fabric.drain()
        report = fabric.report()
        assert len(report.avg_hops_per_subnet) == 2
        # Traffic flowed, so at least one subnet has a positive mean.
        assert any(h > 0 for h in report.avg_hops_per_subnet)
        assert report.avg_hops_per_subnet == (
            fabric.stats.average_hops_per_subnet()
        )
        assert fabric.stats.average_hops() > 0

    def test_report_carries_latency_percentiles(self):
        fabric = small_fabric()
        from repro.traffic.generators import SyntheticTrafficSource
        from repro.traffic.patterns import make_pattern

        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), 0.1, 128, seed=5
        )
        fabric.stats.begin_measurement(0)
        for _ in range(600):
            source.step(fabric.cycle)
            fabric.step()
        report = fabric.report()
        assert report.latency_p50 > 0
        assert (
            report.latency_p50
            <= report.latency_p95
            <= report.latency_p99
        )
