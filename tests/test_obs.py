"""Campaign observability: ledger, digest, status, report, CLI.

Covers the `repro.obs` package plus its wiring into the sweep runner
and the experiments CLI: canonical-digest determinism across worker
counts and cache states, crash-tolerant ledger reads (tail-while-
writing), status rendering against committed fixtures, the artifact-
joined rollup (including graceful degradation when artifacts are
missing), and the `--ledger` / `--stats-out` CLI flags.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import synthetic_phases
from repro.experiments.runner import (
    PointSpec,
    SweepCache,
    SweepStats,
    run_sweep,
)
from repro.noc.config import NocConfig
from repro.obs.ledger import (
    LEDGER_NAME,
    LEDGER_SCHEMA,
    LedgerObserver,
    canonical_digest,
    read_ledger,
    run_id_for,
)
from repro.obs.report import REPORT_NAME, build_report, render_report, write_report
from repro.obs.status import (
    render_ls,
    render_status,
    replay,
    resolve_run,
)

TINY = synthetic_phases(0.04)

FIXTURES = Path(__file__).parent / "data" / "obs"


def tiny_specs(seed: int = 7, loads=(0.02, 0.10, 0.20, 0.30)):
    config = NocConfig.multi_noc(2)
    return [
        PointSpec.synthetic(config, "uniform", load, TINY, seed)
        for load in loads
    ]


def run_ledgered(tmp_path, jobs: int, cache=None, name="obs"):
    observer = LedgerObserver(root=tmp_path / name)
    rows = run_sweep(
        tiny_specs(), jobs=jobs, cache=cache, observer=observer
    )
    events, warnings = read_ledger(observer.runs[-1] / LEDGER_NAME)
    assert warnings == []
    return rows, events, observer


class TestRunId:
    def test_deterministic_and_label_insensitive(self):
        specs = tiny_specs()
        relabeled = [
            PointSpec.synthetic(
                spec.config,
                spec.pattern,
                spec.load,
                spec.phases,
                spec.seed,
                variant="x",
            )
            for spec in specs
        ]
        assert run_id_for(specs) == run_id_for(specs)
        assert run_id_for(specs) == run_id_for(relabeled)
        assert len(run_id_for(specs)) == 12

    def test_order_sensitive(self):
        specs = tiny_specs()
        assert run_id_for(specs) != run_id_for(specs[::-1])


class TestReadLedger:
    def test_missing_file_warns_never_raises(self, tmp_path):
        events, warnings = read_ledger(tmp_path / "absent.jsonl")
        assert events == []
        assert len(warnings) == 1

    def test_partial_trailing_line_is_silently_tolerated(
        self, tmp_path
    ):
        path = tmp_path / LEDGER_NAME
        path.write_text(
            '{"event":"sweep_started","total":2}\n{"event":"point_fi'
        )
        events, warnings = read_ledger(path)
        assert [e["event"] for e in events] == ["sweep_started"]
        assert warnings == []

    def test_corrupt_interior_line_warns_and_skips(self, tmp_path):
        path = tmp_path / LEDGER_NAME
        path.write_text(
            '{"event":"sweep_started","total":2}\n'
            "NOT JSON AT ALL\n"
            '{"event":"point_finished","index":0}\n'
        )
        events, warnings = read_ledger(path)
        assert [e["event"] for e in events] == [
            "sweep_started",
            "point_finished",
        ]
        assert len(warnings) == 1
        assert "line 2" in warnings[0]

    def test_complete_final_corrupt_line_warns(self, tmp_path):
        path = tmp_path / LEDGER_NAME
        path.write_text('{"event":"sweep_started"}\ngarbage\n')
        _, warnings = read_ledger(path)
        assert len(warnings) == 1

    def test_tail_while_writing(self, tmp_path):
        # Simulate another process appending: whole lines become
        # visible atomically, a half-written line is invisible until
        # its newline lands.
        source = (FIXTURES / "ledger_finished.jsonl").read_text()
        lines = source.splitlines(keepends=True)
        path = tmp_path / LEDGER_NAME
        with open(path, "w") as handle:
            for line in lines[:-1]:
                handle.write(line)
            handle.flush()
            events, warnings = read_ledger(path)
            assert len(events) == len(lines) - 1
            assert warnings == []
            assert not replay(events).finished

            handle.write(lines[-1][: len(lines[-1]) // 2])
            handle.flush()
            events, warnings = read_ledger(path)
            assert len(events) == len(lines) - 1
            assert warnings == []

            handle.write(lines[-1][len(lines[-1]) // 2 :])
            handle.flush()
            events, warnings = read_ledger(path)
            assert len(events) == len(lines)
            assert replay(events).finished


class TestCanonicalDigest:
    def test_serial_vs_parallel_identical(self, tmp_path):
        rows1, events1, _ = run_ledgered(tmp_path, jobs=1)
        rows4, events4, _ = run_ledgered(tmp_path, jobs=4)
        digest1 = canonical_digest(events1)
        digest4 = canonical_digest(events4)
        assert digest1 is not None
        assert digest1 == digest4
        assert rows1 == rows4
        # The recorded footer digest matches an offline recompute.
        footer1 = [
            e for e in events1 if e["event"] == "sweep_finished"
        ][0]
        assert footer1["digest"] == digest1

    def test_cold_vs_warm_cache_identical(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        _, cold, _ = run_ledgered(tmp_path, jobs=1, cache=cache)
        _, warm, _ = run_ledgered(tmp_path, jobs=1, cache=cache)
        assert sum(
            1 for e in warm if e["event"] == "cache_hit"
        ) == len(tiny_specs())
        assert canonical_digest(cold) == canonical_digest(warm)

    def test_different_work_different_digest(self, tmp_path):
        _, events, _ = run_ledgered(tmp_path, jobs=1)
        observer = LedgerObserver(root=tmp_path / "other")
        run_sweep(
            tiny_specs(seed=8),
            jobs=1,
            cache=None,
            observer=observer,
        )
        other, _ = read_ledger(observer.runs[-1] / LEDGER_NAME)
        assert canonical_digest(events) != canonical_digest(other)

    def test_headerless_events_digest_none(self):
        assert canonical_digest([]) is None
        assert canonical_digest([{"event": "heartbeat"}]) is None


class TestLedgerObserver:
    def test_event_stream_shape_serial(self, tmp_path):
        _, events, observer = run_ledgered(tmp_path, jobs=1)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("point_started") == 4
        assert kinds.count("point_finished") == 4
        assert kinds.count("heartbeat") == 4
        assert [e["seq"] for e in events] == list(range(len(events)))
        header = events[0]
        assert header["schema"] == LEDGER_SCHEMA
        assert header["run_id"] == run_id_for(tiny_specs())
        assert len(header["spec_index"]) == 4
        assert header["spec_index"][0]["config"] == "2NT-256b"
        footer = events[-1]
        assert footer["stats"]["schema"] == "repro.obs/1"
        assert footer["stats"]["points"] == 4

    def test_run_dirs_get_fresh_suffixes(self, tmp_path):
        _, _, first = run_ledgered(tmp_path, jobs=1)
        _, _, second = run_ledgered(tmp_path, jobs=1)
        run_id = run_id_for(tiny_specs())
        assert first.runs[-1].name == f"{run_id}-r0"
        assert second.runs[-1].name == f"{run_id}-r1"

    def test_obs_root_self_ignores(self, tmp_path):
        _, _, observer = run_ledgered(tmp_path, jobs=1)
        gitignore = observer.root / ".gitignore"
        assert gitignore.read_text() == "*\n!.gitignore\n"

    def test_unattached_sweep_rows_byte_identical(self, tmp_path):
        plain = run_sweep(tiny_specs(), jobs=1, cache=None)
        ledgered, _, _ = run_ledgered(tmp_path, jobs=1)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            ledgered, sort_keys=True
        )

    def test_failed_point_recorded(self, tmp_path):
        from dataclasses import replace

        bad = replace(
            PointSpec.synthetic(
                NocConfig.multi_noc(2), "uniform", 0.1, TINY, 7
            ),
            pattern="no_such_pattern",
        )
        observer = LedgerObserver(root=tmp_path / "obs")
        run_sweep([bad], jobs=1, cache=None, observer=observer)
        events, _ = read_ledger(observer.runs[-1] / LEDGER_NAME)
        kinds = [e["event"] for e in events]
        assert "point_failed" in kinds
        state = replay(events)
        assert state.failed == 1
        assert state.finished


class TestStatus:
    def test_finished_fixture_snapshot(self):
        events, warnings = read_ledger(
            FIXTURES / "ledger_finished.jsonl"
        )
        assert warnings == []
        rendered = render_status(replay(events, warnings)) + "\n"
        expected = (FIXTURES / "status_finished.txt").read_text()
        assert rendered == expected

    def test_live_fixture_reports_running(self):
        events, warnings = read_ledger(FIXTURES / "ledger.jsonl")
        state = replay(events, warnings)
        assert not state.finished
        text = render_status(state)
        assert "[running]" in text
        assert "1 failed" in text
        assert "ValueError: boom" in text

    def test_replay_counts(self):
        events, _ = read_ledger(FIXTURES / "ledger_finished.jsonl")
        state = replay(events)
        assert state.total == 4
        assert state.done == 4
        assert state.cache_hits == 1
        assert state.executed == 2
        assert state.failed == 1
        assert state.retried == 1
        assert sorted(state.workers) == [1001, 1002]
        assert state.sim_cycles == 8000

    def test_render_survives_empty_ledger(self):
        assert "0/0" in render_status(replay([]))


class TestResolveAndLs:
    def test_resolve_by_name_prefix_path_and_latest(self, tmp_path):
        _, _, observer = run_ledgered(tmp_path, jobs=1)
        run_dir = observer.runs[-1]
        root = observer.root
        assert resolve_run(run_dir.name, root) == run_dir
        assert resolve_run(str(run_dir), root) == run_dir
        assert (
            resolve_run(str(run_dir / LEDGER_NAME), root) == run_dir
        )
        assert resolve_run(run_dir.name[:6], root) == run_dir
        assert resolve_run(None, root) == run_dir
        assert resolve_run("zzz-no-such", root) is None

    def test_ambiguous_prefix_unresolved(self, tmp_path):
        _, _, observer = run_ledgered(tmp_path, jobs=1)
        _, _, observer = run_ledgered(tmp_path, jobs=1)
        run_id = run_id_for(tiny_specs())
        assert resolve_run(run_id[:6], observer.root) is None
        # ...but the full directory name still resolves exactly.
        assert (
            resolve_run(f"{run_id}-r1", observer.root)
            == observer.runs[-1]
        )

    def test_ls_renders_both_runs(self, tmp_path):
        _, _, observer = run_ledgered(tmp_path, jobs=1)
        run_ledgered(tmp_path, jobs=1)
        text = render_ls(observer.root)
        assert text.count("finished") == 2
        assert "no runs" not in text

    def test_ls_empty_root(self, tmp_path):
        assert "no runs" in render_ls(tmp_path / "nothing")


class TestReport:
    def test_fixture_report_degrades_gracefully(self, tmp_path):
        # The fixture ledger references artifact paths that do not
        # exist on this machine: the join must render blanks, not
        # raise.
        run_dir = tmp_path / "deadbeef0123-r0"
        run_dir.mkdir()
        (run_dir / LEDGER_NAME).write_text(
            (FIXTURES / "ledger_finished.jsonl").read_text()
        )
        report, out = write_report(run_dir)
        assert out == run_dir / REPORT_NAME
        assert out.is_file()
        rows = report["rollup"]["rows"]
        assert [r["status"] for r in rows] == [
            "ok",
            "ok",
            "ok",
            "failed",
        ]
        assert rows[1]["sleep_frac"] is None
        assert rows[1]["latency"] == 21.4
        assert report["rollup"]["failed"] == [3]
        text = render_report(report)
        assert "campaign rollup" in text
        assert "failed" in text

    def test_interrupted_run_points_missing(self, tmp_path):
        run_dir = tmp_path / "run-r0"
        run_dir.mkdir()
        source = (FIXTURES / "ledger.jsonl").read_text().splitlines()
        # Header plus the first cache hit only: points 1-3 never ran.
        (run_dir / LEDGER_NAME).write_text(
            "\n".join(source[:2]) + "\n"
        )
        report = build_report(run_dir)
        statuses = [
            r["status"] for r in report["rollup"]["rows"]
        ]
        assert statuses == ["ok", "missing", "missing", "missing"]
        assert not report["finished"]

    def test_telemetry_join_end_to_end(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv(
            "REPRO_TELEMETRY_DIR", str(tmp_path / "telemetry")
        )
        observer = LedgerObserver(root=tmp_path / "obs")
        run_sweep(
            tiny_specs(loads=(0.05, 0.10)),
            jobs=1,
            cache=None,
            observer=observer,
        )
        report = build_report(observer.runs[-1])
        rows = report["rollup"]["rows"]
        assert len(rows) == 2
        for row in rows:
            assert row["status"] == "ok"
            # 2-subnet fabric: one sleep fraction per subnet.
            assert isinstance(row["sleep_frac"], list)
            assert len(row["sleep_frac"]) == 2
        kinds = {
            artifact["kind"]
            for entries in report["artifacts"].values()
            for artifact in entries
        }
        assert "telemetry-timeseries" in kinds
        # Deleting the artifacts degrades the join, not the report.
        for path in (tmp_path / "telemetry").iterdir():
            path.unlink()
        degraded = build_report(observer.runs[-1])
        assert all(
            row["sleep_frac"] is None
            for row in degraded["rollup"]["rows"]
        )

    def test_rollup_identical_serial_vs_parallel(self, tmp_path):
        _, _, first = run_ledgered(tmp_path, jobs=1)
        _, _, second = run_ledgered(tmp_path, jobs=4)
        a = build_report(first.runs[-1])["rollup"]
        b = build_report(second.runs[-1])["rollup"]
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )


class TestProgressObserverEta:
    def _observer(self):
        import io

        from repro.experiments.runner import ProgressObserver

        stream = io.StringIO()
        return ProgressObserver(stream=stream), stream

    def test_no_eta_before_two_points(self):
        observer, stream = self._observer()
        observer.sweep_started(3)
        observer.point_finished(0, tiny_specs()[0], [], 0.5, False)
        assert "eta" not in stream.getvalue()

    def test_eta_and_cache_count_after_two_points(self):
        observer, stream = self._observer()
        observer.sweep_started(3)
        spec = tiny_specs()[0]
        observer.point_finished(0, spec, [], 0.5, False)
        observer.point_finished(1, spec, [], 0.0, True)
        lines = stream.getvalue().splitlines()
        assert "eta" in lines[-1]
        assert "1 cached" in lines[-1]

    def test_no_eta_on_last_point(self):
        observer, stream = self._observer()
        observer.sweep_started(2)
        spec = tiny_specs()[0]
        observer.point_finished(0, spec, [], 0.5, False)
        observer.point_finished(1, spec, [], 0.5, False)
        assert "eta" not in stream.getvalue().splitlines()[-1]

    def test_summary_line_reports_retries(self):
        observer, stream = self._observer()
        observer.sweep_finished(
            SweepStats(points=3, cache_hits=3, retried_points=2)
        )
        assert "2 retried" in stream.getvalue()


class TestSweepStatsToJson:
    def test_schema_and_stable_keys(self):
        stats = SweepStats(
            points=2,
            cache_hits=1,
            cache_misses=1,
            retried_points=1,
            failed_points=[(1, "boom")],
            sim_cycles=10,
            sim_flits=20,
            workers=2,
            worker_busy_seconds={7: 0.5, 3: 0.25},
            wall_seconds=1.0,
            exec_wall_seconds=0.9,
        )
        doc = stats.to_json()
        assert doc["schema"] == "repro.obs/1"
        assert doc["failed_points"] == [[1, "boom"]]
        # Key order is stable (sorted pids, fixed field order) so the
        # document is diffable across runs.
        assert list(doc["worker_busy_seconds"]) == ["3", "7"]
        assert json.dumps(doc) == json.dumps(stats.to_json())


@pytest.mark.slow
class TestCliIntegration:
    def _guard_env(self, monkeypatch, names):
        for name in names:
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)

    def test_ledger_and_stats_out_flags(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments.cli import main

        self._guard_env(
            monkeypatch,
            ("REPRO_JOBS", "REPRO_NO_CACHE", "REPRO_OBS_DIR"),
        )
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        monkeypatch.setenv(
            "REPRO_CACHE_DIR", str(tmp_path / "cache")
        )
        stats_path = tmp_path / "stats.json"
        assert (
            main(
                [
                    "fig06",
                    "--scale",
                    "0.02",
                    "--jobs",
                    "1",
                    "--ledger",
                    "--stats-out",
                    str(stats_path),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "ledger:" in err
        runs = list((tmp_path / "obs").iterdir())
        ledgers = [
            run for run in runs if (run / LEDGER_NAME).is_file()
        ]
        assert len(ledgers) == 1
        events, warnings = read_ledger(ledgers[0] / LEDGER_NAME)
        assert warnings == []
        assert replay(events).finished
        doc = json.loads(stats_path.read_text())
        assert doc["schema"] == "repro.obs/1"
        assert len(doc["sweeps"]) == 1
        assert doc["sweeps"][0]["points"] == 8

    def test_obs_cli_status_and_report(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.obs.__main__ import main as obs_main

        run_dir = tmp_path / "deadbeef0123-r0"
        run_dir.mkdir(parents=True)
        (run_dir / LEDGER_NAME).write_text(
            (FIXTURES / "ledger_finished.jsonl").read_text()
        )
        assert obs_main(["--dir", str(tmp_path), "ls"]) == 0
        assert "deadbeef0123-r0" in capsys.readouterr().out
        assert (
            obs_main(["--dir", str(tmp_path), "status", "deadbeef"])
            == 0
        )
        assert "[finished]" in capsys.readouterr().out
        assert (
            obs_main(["--dir", str(tmp_path), "report"]) == 0
        )
        out = capsys.readouterr().out
        assert "campaign rollup" in out
        assert (run_dir / REPORT_NAME).is_file()
        assert (
            obs_main(["--dir", str(tmp_path), "status", "nope"])
            == 1
        )


class TestEnvRegistry:
    def test_obs_vars_registered(self):
        from repro.util import env

        assert "REPRO_OBS" in env.registered_names()
        assert "REPRO_OBS_DIR" in env.registered_names()
