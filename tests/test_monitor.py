"""Tests for the congestion monitor (LCS + RCS plumbing)."""

from __future__ import annotations

from dataclasses import replace

from tests.conftest import small_config

from repro.core.monitor import CongestionMonitor
from repro.noc.config import CongestionConfig
from repro.noc.flit import Flit, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.noc.topology import Port


def fill_router(network, node, flits):
    """Stuff a router's east input port with waiting flits."""
    router = network.routers[node]
    for i in range(flits):
        packet = Packet(src=node, dst=node, size_bits=128)
        flit = Flit(packet, True, True, 0)
        flit.route = Port.LOCAL
        router.ports[Port.EAST].push(i % 4, flit)
        router.buffered_flits += 1
        network.flits_in_network += 1


class TestLcs:
    def test_lcs_set_when_bfm_exceeds_threshold(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        fill_router(fabric.subnets[0], 5, 12)
        fabric.monitor.update(0, fabric.subnets, fabric.nis)
        assert fabric.monitor.lcs[0][5]
        assert not fabric.monitor.lcs[1][5]

    def test_lcs_clear_when_empty(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        fabric.monitor.update(0, fabric.subnets, fabric.nis)
        assert not any(fabric.monitor.lcs[0])


class TestIsCongested:
    def test_regional_bit_spreads_to_region(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        hot = 0  # region 0 on the 4x4 mesh
        fill_router(fabric.subnets[0], hot, 12)
        monitor.update(0, fabric.subnets, fabric.nis)  # RCS boundary
        same_region = fabric.mesh.region_nodes(0)
        for node in same_region:
            assert monitor.is_congested(node, 0)
        other_region = fabric.mesh.region_nodes(3)
        for node in other_region:
            assert not monitor.is_congested(node, 0)

    def test_local_only_mode_stays_local(self):
        config = replace(
            small_config(),
            congestion=replace(CongestionConfig(), use_regional=False),
        )
        fabric = MultiNocFabric(config, seed=1)
        monitor = fabric.monitor
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.is_congested(0, 0)
        neighbors = [n for n in fabric.mesh.region_nodes(0) if n != 0]
        assert not any(monitor.is_congested(n, 0) for n in neighbors)


class TestGatingStatus:
    def test_uses_rcs_when_regional(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        region0 = fabric.mesh.region_nodes(0)
        assert all(monitor.gating_status(n, 0) for n in region0)

    def test_uses_lcs_when_local(self):
        config = replace(
            small_config(),
            congestion=replace(CongestionConfig(), use_regional=False),
        )
        fabric = MultiNocFabric(config, seed=1)
        monitor = fabric.monitor
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.gating_status(0, 0)
        assert not monitor.gating_status(1, 0)


class TestIdleFastPath:
    def test_latched_congestion_decays_after_traffic_stops(self):
        """The idle-subnet skip must not freeze a latched status."""
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        network = fabric.subnets[0]
        fill_router(network, 3, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.lcs[0][3]
        # Drain the router manually and tick past hold + RCS period.
        router = network.routers[3]
        for port in router.ports:
            for vc in port.vcs:
                vc.fifo.clear()
            port.occupancy = 0
        router.buffered_flits = 0
        for cycle in range(1, 30):
            monitor.update(cycle, fabric.subnets, fabric.nis)
        assert not monitor.lcs[0][3]
        assert not monitor.is_congested(3, 0)

    def test_congested_fraction(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        fill_router(fabric.subnets[0], 0, 12)
        fabric.monitor.update(0, fabric.subnets, fabric.nis)
        assert fabric.monitor.congested_fraction(0) == 1 / 16


def drain_router(network, node):
    """Inverse of fill_router: empty the router's input buffers."""
    router = network.routers[node]
    for port in router.ports:
        for vc_idx in range(len(port.vcs)):
            while port.vcs[vc_idx].fifo:
                port.pop(vc_idx)
                router.buffered_flits -= 1
                network.flits_in_network -= 1


class TestRcsUpdateBoundaries:
    """RCS latches only on update-period boundaries (H-tree delay).

    The default config uses ``rcs_update_period=6`` (the paper's
    2.7 ns OR-tree propagation at 2 GHz) and ``hold_cycles=6`` for the
    LCS hysteresis latch; these tests pin the boundary semantics the
    telemetry RCS probe relies on.
    """

    def test_lcs_flip_on_boundary_latches_in_same_update(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        period = monitor.regional.update_period
        for cycle in range(period):
            monitor.update(cycle, fabric.subnets, fabric.nis)
        assert not monitor.regional.rcs(0, 0)
        # LCS rises exactly at the boundary cycle: monitor.update
        # evaluates LCS before feeding the regional network, so the
        # flip is latched by the same call.
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(period, fabric.subnets, fabric.nis)
        assert monitor.lcs[0][0]
        assert monitor.regional.rcs(0, 0)

    def test_lcs_flip_after_boundary_waits_a_full_period(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        period = monitor.regional.update_period
        for cycle in range(period + 1):
            monitor.update(cycle, fabric.subnets, fabric.nis)
        # LCS rises one cycle past the boundary: the regional bit must
        # stay clear until the next boundary.
        fill_router(fabric.subnets[0], 0, 12)
        for cycle in range(period + 1, 2 * period):
            monitor.update(cycle, fabric.subnets, fabric.nis)
            assert monitor.lcs[0][0]
            assert not monitor.regional.rcs(0, 0)
        monitor.update(2 * period, fabric.subnets, fabric.nis)
        assert monitor.regional.rcs(0, 0)

    def test_hysteresis_latch_holds_rcs_across_boundary(self):
        """A raw signal gone low stays latched through the boundary."""
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        period = monitor.regional.update_period  # 6
        hold = fabric.config.congestion.hold_cycles  # 6
        for cycle in range(period + 1):
            monitor.update(cycle, fabric.subnets, fabric.nis)
        # Raw congestion only at cycle 7: latch holds until 7 + hold.
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(period + 1, fabric.subnets, fabric.nis)
        assert monitor.lcs[0][0]
        drain_router(fabric.subnets[0], 0)
        for cycle in range(period + 2, 2 * period):
            monitor.update(cycle, fabric.subnets, fabric.nis)
        # Boundary at 2*period=12 < held-until=13: the latch is still
        # set even though the raw signal has been low for cycles, so
        # the RCS bit asserts on this boundary.
        monitor.update(2 * period, fabric.subnets, fabric.nis)
        assert monitor.lcs[0][0]
        assert monitor.regional.rcs(0, 0)
        # The latch expires at period+1+hold=13; by the next boundary
        # (18) the regional bit clears again.
        for cycle in range(2 * period + 1, 3 * period):
            monitor.update(cycle, fabric.subnets, fabric.nis)
            assert monitor.regional.rcs(0, 0)
        monitor.update(3 * period, fabric.subnets, fabric.nis)
        assert not monitor.lcs[0][0]
        assert not monitor.regional.rcs(0, 0)

    def test_transitions_counted_per_toggle(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        period = monitor.regional.update_period
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.regional.transitions == 1
        drain_router(fabric.subnets[0], 0)
        cycle = 1
        while monitor.regional.rcs(0, 0):
            monitor.update(cycle, fabric.subnets, fabric.nis)
            cycle += 1
        assert monitor.regional.transitions == 2


class TestLcsCount:
    def test_lcs_count_tracks_latched_nodes(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        assert monitor.lcs_count(0) == 0
        fill_router(fabric.subnets[0], 0, 12)
        fill_router(fabric.subnets[0], 5, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.lcs_count(0) == 2
        assert monitor.lcs_count(1) == 0
        assert monitor.lcs_count(0) == sum(monitor.lcs[0])
