"""Tests for the congestion monitor (LCS + RCS plumbing)."""

from __future__ import annotations

from dataclasses import replace

from tests.conftest import small_config

from repro.core.monitor import CongestionMonitor
from repro.noc.config import CongestionConfig
from repro.noc.flit import Flit, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.noc.topology import Port


def fill_router(network, node, flits):
    """Stuff a router's east input port with waiting flits."""
    router = network.routers[node]
    for i in range(flits):
        packet = Packet(src=node, dst=node, size_bits=128)
        flit = Flit(packet, True, True, 0)
        flit.route = Port.LOCAL
        router.ports[Port.EAST].push(i % 4, flit)
        router.buffered_flits += 1
        network.flits_in_network += 1


class TestLcs:
    def test_lcs_set_when_bfm_exceeds_threshold(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        fill_router(fabric.subnets[0], 5, 12)
        fabric.monitor.update(0, fabric.subnets, fabric.nis)
        assert fabric.monitor.lcs[0][5]
        assert not fabric.monitor.lcs[1][5]

    def test_lcs_clear_when_empty(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        fabric.monitor.update(0, fabric.subnets, fabric.nis)
        assert not any(fabric.monitor.lcs[0])


class TestIsCongested:
    def test_regional_bit_spreads_to_region(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        hot = 0  # region 0 on the 4x4 mesh
        fill_router(fabric.subnets[0], hot, 12)
        monitor.update(0, fabric.subnets, fabric.nis)  # RCS boundary
        same_region = fabric.mesh.region_nodes(0)
        for node in same_region:
            assert monitor.is_congested(node, 0)
        other_region = fabric.mesh.region_nodes(3)
        for node in other_region:
            assert not monitor.is_congested(node, 0)

    def test_local_only_mode_stays_local(self):
        config = replace(
            small_config(),
            congestion=replace(CongestionConfig(), use_regional=False),
        )
        fabric = MultiNocFabric(config, seed=1)
        monitor = fabric.monitor
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.is_congested(0, 0)
        neighbors = [n for n in fabric.mesh.region_nodes(0) if n != 0]
        assert not any(monitor.is_congested(n, 0) for n in neighbors)


class TestGatingStatus:
    def test_uses_rcs_when_regional(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        region0 = fabric.mesh.region_nodes(0)
        assert all(monitor.gating_status(n, 0) for n in region0)

    def test_uses_lcs_when_local(self):
        config = replace(
            small_config(),
            congestion=replace(CongestionConfig(), use_regional=False),
        )
        fabric = MultiNocFabric(config, seed=1)
        monitor = fabric.monitor
        fill_router(fabric.subnets[0], 0, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.gating_status(0, 0)
        assert not monitor.gating_status(1, 0)


class TestIdleFastPath:
    def test_latched_congestion_decays_after_traffic_stops(self):
        """The idle-subnet skip must not freeze a latched status."""
        fabric = MultiNocFabric(small_config(), seed=1)
        monitor = fabric.monitor
        network = fabric.subnets[0]
        fill_router(network, 3, 12)
        monitor.update(0, fabric.subnets, fabric.nis)
        assert monitor.lcs[0][3]
        # Drain the router manually and tick past hold + RCS period.
        router = network.routers[3]
        for port in router.ports:
            for vc in port.vcs:
                vc.fifo.clear()
            port.occupancy = 0
        router.buffered_flits = 0
        for cycle in range(1, 30):
            monitor.update(cycle, fabric.subnets, fabric.nis)
        assert not monitor.lcs[0][3]
        assert not monitor.is_congested(3, 0)

    def test_congested_fraction(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        fill_router(fabric.subnets[0], 0, 12)
        fabric.monitor.update(0, fabric.subnets, fabric.nis)
        assert fabric.monitor.congested_fraction(0) == 1 / 16
