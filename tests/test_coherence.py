"""Tests for the MESI directory transaction engine."""

from __future__ import annotations

import pytest

from tests.conftest import small_config

from repro.noc.multinoc import MultiNocFabric
from repro.system.coherence import (
    CoherenceEngine,
    CoherenceParams,
    Transaction,
)
from repro.system.memory import MemorySystem


def make_engine(params=None, seed=5):
    fabric = MultiNocFabric(small_config(), seed=seed)
    memory = MemorySystem(fabric.mesh, count=4)
    completions = []
    engine = CoherenceEngine(
        fabric,
        memory,
        params or CoherenceParams(),
        on_complete=lambda txn, cycle: completions.append((txn, cycle)),
        seed=seed,
    )
    return fabric, engine, completions


def run_transactions(fabric, engine, count, max_cycles=20_000):
    for i in range(count):
        engine.start_transaction(
            Transaction(core_id=i, node=i % fabric.mesh.num_nodes,
                        start_cycle=fabric.cycle),
            fabric.cycle,
        )
    for _ in range(max_cycles):
        engine.process_due(fabric.cycle)
        fabric.step()
        if engine.transactions_completed >= count:
            break
    engine.process_due(fabric.cycle)


class TestTransactionCompletion:
    def test_every_transaction_completes(self):
        fabric, engine, completions = make_engine()
        run_transactions(fabric, engine, 50)
        assert engine.transactions_completed == 50
        assert len(completions) == 50

    def test_completion_latency_reasonable(self):
        fabric, engine, completions = make_engine()
        run_transactions(fabric, engine, 30)
        latencies = [
            cycle - txn.start_cycle for txn, cycle in completions
        ]
        assert all(lat > 0 for lat in latencies)
        # Round trip on a small idle mesh: tens of cycles, not thousands.
        assert sum(latencies) / len(latencies) < 400

    def test_l2_miss_pays_dram_latency(self):
        fabric, engine, completions = make_engine(
            params=CoherenceParams(l2_hit_rate=0.0,
                                   invalidate_fraction=0.0,
                                   writeback_fraction=0.0)
        )
        run_transactions(fabric, engine, 20)
        latencies = [c - t.start_cycle for t, c in completions]
        assert min(latencies) >= 80, "DRAM latency must be paid"

    def test_pure_l2_hits_faster_than_misses(self):
        def mean_latency(hit_rate):
            fabric, engine, completions = make_engine(
                params=CoherenceParams(l2_hit_rate=hit_rate,
                                       invalidate_fraction=0.0,
                                       writeback_fraction=0.0)
            )
            run_transactions(fabric, engine, 30)
            lats = [c - t.start_cycle for t, c in completions]
            return sum(lats) / len(lats)

        assert mean_latency(1.0) < mean_latency(0.0)


class TestMessageMix:
    def test_control_fraction_near_paper_60pct(self):
        fabric, engine, _ = make_engine()
        run_transactions(fabric, engine, 300)
        assert 0.45 <= engine.control_fraction <= 0.75

    def test_writebacks_add_data_packets(self):
        def data_count(wb):
            fabric, engine, _ = make_engine(
                params=CoherenceParams(writeback_fraction=wb), seed=8
            )
            run_transactions(fabric, engine, 100)
            return engine.data_packets

        assert data_count(0.9) > data_count(0.0)


class TestDeterminism:
    def test_same_seed_same_message_counts(self):
        def run():
            fabric, engine, _ = make_engine(seed=11)
            run_transactions(fabric, engine, 60)
            return (engine.control_packets, engine.data_packets)

        assert run() == run()


class TestParamsValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            CoherenceParams(l2_hit_rate=1.5)
