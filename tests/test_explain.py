"""Tests for the attribution hub (repro.explain, docs/explain.md).

The two reconciliation contracts are enforced exactly, not
statistically:

* every delivered packet's phase decomposition sums to
  ``received_cycle - created_cycle`` (and the hub's own
  ``phase_mismatches`` counter stays zero), on the dense *and* the
  skip backend;
* ``compute_network_power`` over the hub's window-reconstructed
  ``FabricReport`` is bitwise identical to the same model over
  ``fabric.report()``, and the summed window deltas equal the totals
  integer for integer.

Plus the shadowing-contract clauses every observer owes (zero
overhead when off, detach restores, probes never perturb the
simulation) and the artifact/CLI/report-join surface.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.explain.cli import main as explain_main
from repro.explain.hub import (
    PHASE_NAMES,
    ExplainHub,
    explain_enabled,
    maybe_attach,
    parse_explain_spec,
)
from repro.explain.observer import ExplainObserver
from repro.noc.multinoc import MultiNocFabric
from repro.obs.artifacts import (
    EXPLAIN_SUFFIXES,
    classify_artifact,
    explain_tax,
)
from repro.power.network_power import compute_network_power
from repro.traffic.generators import (
    BurstyTrafficSource,
    SyntheticTrafficSource,
)
from repro.traffic.patterns import make_pattern
from tests.conftest import gated_config


@pytest.fixture(autouse=True)
def _explain_env_absent(monkeypatch):
    """Every test here assumes a clean explain environment unless it
    sets one itself — keeps this file order-independent of suite-mates
    that run the CLI's --explain path."""
    for name in ("REPRO_EXPLAIN", "REPRO_EXPLAIN_DIR"):
        monkeypatch.delenv(name, raising=False)


def gated_fabric(seed: int = 9, backend=None, **overrides):
    return MultiNocFabric(
        gated_config(**overrides), seed=seed, backend=backend
    )


def run_traffic(fabric, cycles: int, load: float = 0.1, seed: int = 9):
    source = SyntheticTrafficSource(
        fabric, make_pattern("uniform", fabric.mesh), load, 128, seed=seed
    )
    for _ in range(cycles):
        source.step(fabric.cycle)
        fabric.step()


def run_bursty(fabric, cycles: int, seed: int = 9):
    """Step-load schedule exercising sleeps, wakeups, and stalls."""
    schedule = [(0, 0.85), (cycles // 4, 0.02), (cycles // 2, 0.9)]
    source = BurstyTrafficSource(
        fabric,
        make_pattern("transpose", fabric.mesh),
        schedule,
        seed=seed,
    )
    for _ in range(cycles):
        source.step(fabric.cycle)
        fabric.step()


def attributed_run(seed: int = 9, backend=None) -> MultiNocFabric:
    """A drained bursty run with a hub attached from construction."""
    fabric = gated_fabric(seed=seed, backend=backend)
    hub = ExplainHub(fabric, out_dir=None).attach()
    assert fabric.explain is None  # env off; hand-attached hub
    fabric.explain = hub
    run_bursty(fabric, 2400, seed=seed)
    assert fabric.drain(50_000)
    return fabric


class TestSpecParsing:
    def test_default_specs_enable_both(self):
        assert parse_explain_spec("1") == (True, True)
        assert parse_explain_spec("") == (True, True)

    def test_component_specs(self):
        assert parse_explain_spec("latency") == (True, False)
        assert parse_explain_spec("energy") == (False, True)
        assert parse_explain_spec("latency,energy") == (True, True)
        assert parse_explain_spec(" energy , latency ") == (True, True)

    def test_unknown_component_raises(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_explain_spec("bogus")
        with pytest.raises(ValueError):
            parse_explain_spec("latency,bogus")

    def test_enabled_reads_env(self, monkeypatch):
        assert not explain_enabled()
        monkeypatch.setenv("REPRO_EXPLAIN", "0")
        assert not explain_enabled()
        monkeypatch.setenv("REPRO_EXPLAIN", "1")
        assert explain_enabled()
        monkeypatch.setenv("REPRO_EXPLAIN", "latency")
        assert explain_enabled()


class TestZeroOverhead:
    def test_unattached_fabric_has_no_hub_shadows(self):
        fabric = gated_fabric()
        assert fabric.explain is None
        assert "step" not in fabric.__dict__
        assert "report" not in fabric.__dict__
        for ni in fabric.nis:
            assert "_assign_head" not in ni.__dict__
            assert "step" not in ni.__dict__
        for network in fabric.subnets:
            for name in ("inject", "send", "eject"):
                assert name not in network.__dict__
        assert fabric.step.__func__ is MultiNocFabric.step

    def test_constructor_attaches_hub_from_env(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_EXPLAIN", "1")
        monkeypatch.setenv("REPRO_EXPLAIN_DIR", str(tmp_path))
        fabric = gated_fabric()
        assert isinstance(fabric.explain, ExplainHub)
        assert fabric.explain.attached
        assert fabric.explain.out_dir == str(tmp_path)
        run_traffic(fabric, 200)
        fabric.report()
        names = os.listdir(tmp_path)
        assert any(n.endswith(".explain.json") for n in names)

    def test_maybe_attach_respects_env(self, monkeypatch):
        fabric = gated_fabric()
        assert maybe_attach(fabric) is None
        monkeypatch.setenv("REPRO_EXPLAIN", "1")
        hub = maybe_attach(gated_fabric())
        assert hub is not None and hub.attached

    def test_detach_restores_every_shadow(self):
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=None).attach()
        assert "step" in fabric.__dict__
        assert "_assign_head" in fabric.nis[0].__dict__
        run_traffic(fabric, 64)
        hub.detach()
        assert "step" not in fabric.__dict__
        assert "report" not in fabric.__dict__
        for ni in fabric.nis:
            assert "_assign_head" not in ni.__dict__
            assert "step" not in ni.__dict__
        for network in fabric.subnets:
            for name in ("inject", "send", "eject"):
                assert name not in network.__dict__
        assert fabric.step.__func__ is MultiNocFabric.step
        # Stepping after detach records nothing further.
        seen = hub.packets_seen
        run_traffic(fabric, 64)
        assert hub.packets_seen == seen

    def test_attach_is_idempotent(self):
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=None)
        assert hub.attach() is hub
        saved = len(hub._saved)
        hub.attach()
        assert len(hub._saved) == saved
        hub.detach()
        hub.detach()

    def test_probes_never_perturb_the_simulation(self):
        plain = gated_fabric(seed=11)
        run_bursty(plain, 1200, seed=11)
        hooked = gated_fabric(seed=11)
        ExplainHub(hooked, out_dir=None).attach()
        run_bursty(hooked, 1200, seed=11)
        assert (
            plain.stats.packets_received
            == hooked.stats.packets_received
        )
        assert [s.sleep_cycles for s in plain.gating.stats] == [
            s.sleep_cycles for s in hooked.gating.stats
        ]
        assert [
            n.counters.flits_injected for n in plain.subnets
        ] == [n.counters.flits_injected for n in hooked.subnets]


class TestLatencyReconciliation:
    @pytest.mark.parametrize("backend", [None, "skip"])
    def test_phase_sums_equal_latency_for_every_packet(self, backend):
        fabric = attributed_run(backend=backend)
        hub = fabric.explain
        assert hub.packets_seen > 100
        assert hub.phase_mismatches == 0
        for record in hub.records:
            created, received = record[4], record[5]
            phases = record[6:]
            assert len(phases) == len(PHASE_NAMES)
            assert all(value >= 0 for value in phases)
            assert sum(phases) == received - created
        # The aggregate identity holds too.
        assert sum(hub.phase_totals) == hub.latency_cycles

    def test_bursty_run_exercises_every_phase(self):
        hub = attributed_run().explain
        totals = dict(zip(PHASE_NAMES, hub.phase_totals))
        # The step-load schedule sleeps routers then slams them, so
        # every phase — including the wakeup tax — must be nonzero.
        for name, value in totals.items():
            assert value > 0, f"phase {name} never observed"

    def test_unfinished_packets_are_excluded(self):
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=None).attach()
        run_traffic(fabric, 300, load=0.3)
        # No drain: packets still in flight keep sentinel timestamps.
        doc = hub.latency_doc()
        assert doc["packets"] == hub.packets_seen
        assert doc["unfinished"] == len(hub._packets)
        for record in hub.records:
            assert record[5] >= record[4] >= 0

    def test_record_cap_truncates_but_keeps_totals(self):
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=None, max_packets=5).attach()
        run_traffic(fabric, 600)
        fabric.drain(50_000)
        assert len(hub.records) == 5
        assert hub.truncated_packets == hub.packets_seen - 5
        assert sum(hub.phase_totals) == hub.latency_cycles


class TestEnergyReconciliation:
    @pytest.mark.parametrize("backend", [None, "skip"])
    def test_power_breakdown_bitwise_identical(self, backend):
        fabric = attributed_run(backend=backend)
        hub = fabric.explain
        reconstructed = compute_network_power(
            hub.reconstructed_report()
        )
        direct = compute_network_power(fabric.report())
        # Dataclass equality: every component's dynamic/static watts
        # and the csc fraction, compared as exact floats.
        assert reconstructed == direct

    def test_reconciles_before_or_after_fabric_report(self):
        fabric = attributed_run()
        hub = fabric.explain
        # Digest first (closes windows), then the fabric report.
        digest_before = hub.attribution_digest()
        direct = compute_network_power(fabric.report())
        assert compute_network_power(
            hub.reconstructed_report()
        ) == direct
        # Report-time finalization must not shift the digest.
        assert hub.attribution_digest() == digest_before

    def test_window_deltas_sum_to_totals(self):
        hub = attributed_run().explain
        doc = hub.energy_doc()
        totals = doc["totals"]["subnets"]
        summed = [dict.fromkeys(record, 0) for record in totals]
        for window in doc["windows"]:
            assert window["end"] >= window["start"]
            for subnet, record in enumerate(window["subnets"]):
                for name in summed[subnet]:
                    summed[subnet][name] += record[name]
        assert summed == [
            {name: record[name] for name in summed[0]}
            for record in totals
        ]
        assert doc["totals"]["rcs_transitions"] == sum(
            w["rcs_transitions"] for w in doc["windows"]
        )

    def test_window_joules_are_finite_and_split(self):
        hub = attributed_run().explain
        doc = hub.energy_doc()
        assert doc["windows"], "no energy windows recorded"
        for window in doc["windows"]:
            for record in window["subnets"]:
                assert record["dynamic_j"] >= 0.0
                assert record["static_j"] >= 0.0
                assert record["sleep_transition_j"] >= 0.0


class TestDigestDeterminism:
    def test_dense_vs_skip_byte_identical(self):
        dense = attributed_run(backend=None).explain
        skip = attributed_run(backend="skip").explain
        assert dense.attribution_digest() == skip.attribution_digest()
        assert json.dumps(
            dense._document_body(), sort_keys=True
        ) == json.dumps(skip._document_body(), sort_keys=True)

    def test_repeated_runs_byte_identical(self):
        # Global packet-id churn between runs must not leak into the
        # document (records carry hub-relative ids).
        first = attributed_run().explain.attribution_digest()
        second = attributed_run().explain.attribution_digest()
        assert first == second

    def test_sweep_jobs_digest_identical(self, monkeypatch, tmp_path):
        from repro.experiments.common import synthetic_phases
        from repro.experiments.runner import PointSpec, run_sweep
        from repro.noc.config import NocConfig

        def sweep(jobs: int, directory) -> list[str]:
            monkeypatch.setenv("REPRO_EXPLAIN", "1")
            monkeypatch.setenv("REPRO_EXPLAIN_DIR", str(directory))
            config = NocConfig.multi_noc(2)
            specs = [
                PointSpec.synthetic(
                    config, "uniform", load, synthetic_phases(0.04), 7
                )
                for load in (0.05, 0.20)
            ]
            run_sweep(specs, jobs=jobs, cache=None)
            digests = []
            for name in sorted(os.listdir(directory)):
                with open(directory / name, encoding="utf-8") as f:
                    digests.append(json.load(f)["digest"])
            return digests

        serial = sweep(1, tmp_path / "serial")
        parallel = sweep(2, tmp_path / "parallel")
        assert serial and sorted(serial) == sorted(parallel)


class TestArtifactsAndObserver:
    def _flushed(self, tmp_path) -> str:
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=str(tmp_path)).attach()
        run_traffic(fabric, 400)
        fabric.drain(50_000)
        return hub.flush()["explain"]

    def test_flush_writes_classified_artifact(self, tmp_path):
        path = self._flushed(tmp_path)
        assert path.endswith(EXPLAIN_SUFFIXES)
        assert classify_artifact(path) == "explain-attribution"
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["schema"] == "repro.explain/1"
        assert doc["digest"]
        assert doc["tax"]["per_subnet"]

    def test_repeated_flushes_never_collide(self, tmp_path):
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=str(tmp_path)).attach()
        run_traffic(fabric, 200)
        first = hub.flush()["explain"]
        second = hub.flush()["explain"]
        assert first != second
        assert os.path.exists(first) and os.path.exists(second)

    def test_explain_tax_reader(self, tmp_path):
        path = self._flushed(tmp_path)
        tax = explain_tax(path)
        assert tax is not None
        per_flit, stall = tax
        assert len(per_flit) == len(stall) == 2
        assert any(value is not None for value in per_flit)

    def test_explain_tax_degrades_to_none(self, tmp_path):
        bad = tmp_path / "broken.explain.json"
        bad.write_text("{not json", encoding="utf-8")
        assert explain_tax(str(bad)) is None
        empty = tmp_path / "empty.explain.json"
        empty.write_text("{}", encoding="utf-8")
        assert explain_tax(str(empty)) is None

    def test_observer_reports_new_artifacts(self, tmp_path):
        import io

        stream = io.StringIO()
        observer = ExplainObserver(
            directory=str(tmp_path), stream=stream
        )
        (tmp_path / "old.explain.json").write_text("{}")
        observer.sweep_started(1)
        self._flushed(tmp_path)
        observer.point_finished(0, None, [], 0.0, False)
        observer.sweep_finished(None)
        assert len(observer.reported) == 1
        assert "old" not in observer.reported[0]
        assert "explain:" in stream.getvalue()

    def test_observer_survives_missing_directory(self, tmp_path):
        observer = ExplainObserver(
            directory=str(tmp_path / "missing")
        )
        observer.sweep_started(1)
        observer.point_finished(0, None, [], 0.0, False)
        assert observer.reported == []


class TestReportJoin:
    def test_explain_for_reads_artifact(self, tmp_path):
        from repro.obs.report import _explain_for

        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=str(tmp_path)).attach()
        run_traffic(fabric, 400)
        fabric.drain(50_000)
        path = hub.flush()["explain"]
        joined = _explain_for([path])
        assert joined is not None
        per_flit, stall = joined
        assert len(per_flit) == len(stall) == 2

    def test_explain_for_degrades_gracefully(self, tmp_path):
        from repro.obs.report import _explain_for

        assert _explain_for([]) is None
        assert _explain_for(["/nowhere/x.timeseries.json"]) is None
        bad = tmp_path / "bad.explain.json"
        bad.write_text("{not json", encoding="utf-8")
        assert _explain_for([str(bad)]) is None

    def test_render_report_adds_columns_only_when_present(self):
        from repro.obs.report import render_report

        base_row = {
            "index": 0,
            "config": "2NT",
            "pattern": "uniform",
            "load": 0.1,
            "status": "ok",
            "sleep_frac": None,
        }
        plain = render_report(
            {"run_id": "r", "rollup": {"rows": [dict(base_row)]}}
        )
        assert "epf_pj" not in plain
        joined = render_report(
            {
                "run_id": "r",
                "rollup": {
                    "rows": [
                        {
                            **base_row,
                            "energy_per_flit": [325.7, None],
                            "wakeup_tax": [0.5, None],
                        }
                    ]
                },
            }
        )
        assert "epf_pj" in joined and "wakeup_tax" in joined
        assert "325.700/-" in joined
        assert "0.50/-" in joined


class TestTraceMerge:
    def test_phase_spans_merge_into_validated_trace(self):
        from repro.telemetry.hub import TelemetryHub
        from repro.telemetry.trace import validate_trace

        fabric = gated_fabric()
        telemetry = TelemetryHub(
            fabric, period=32, out_dir=None
        ).attach()
        fabric.telemetry = telemetry
        hub = ExplainHub(fabric, out_dir=None).attach()
        run_bursty(fabric, 1200)
        fabric.drain(50_000)
        doc = telemetry.chrome_trace_doc()
        spans = [
            event
            for event in doc["traceEvents"]
            if event.get("cat") == "explain-phase"
        ]
        assert spans, "no phase spans merged into the trace"
        assert {s["name"] for s in spans} <= set(PHASE_NAMES)
        assert validate_trace(doc) == []
        # Without telemetry attached first, the merge shadow is absent.
        alone = gated_fabric()
        ExplainHub(alone, out_dir=None).attach()
        assert "chrome_trace_doc" not in vars(alone)


class TestExperimentsCliFlags:
    def test_bad_spec_is_a_usage_error(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["fig06", "--explain", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--explain" in err

    def test_good_spec_sets_env_and_disables_cache(
        self, monkeypatch, tmp_path
    ):
        from repro.experiments.cli import main

        # Restore-to-absent dance (mirrors the telemetry-flag tests):
        # main() writes os.environ for forked sweep workers, and the
        # test must not leak that into later tests.
        for name in (
            "REPRO_EXPLAIN",
            "REPRO_EXPLAIN_DIR",
            "REPRO_NO_CACHE",
        ):
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)
        assert (
            main(
                [
                    "fig14",
                    "--scale",
                    "0.02",
                    "--explain",
                    "--explain-out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert os.environ["REPRO_EXPLAIN"] == "1"
        assert os.environ["REPRO_EXPLAIN_DIR"] == str(tmp_path)
        # Attributed rows must never be served from the cache.
        assert os.environ["REPRO_NO_CACHE"] == "1"
        names = os.listdir(tmp_path)
        assert any(n.endswith(".explain.json") for n in names)

    def test_explain_out_implies_explain(self, monkeypatch, tmp_path):
        from repro.experiments.cli import main

        for name in (
            "REPRO_EXPLAIN",
            "REPRO_EXPLAIN_DIR",
            "REPRO_NO_CACHE",
        ):
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)
        assert (
            main(
                ["fig14", "--scale", "0.02",
                 "--explain-out", str(tmp_path)]
            )
            == 0
        )
        assert os.environ["REPRO_EXPLAIN"] == "1"


class TestExplainCli:
    def _artifact_dir(self, tmp_path):
        fabric = gated_fabric()
        hub = ExplainHub(fabric, out_dir=str(tmp_path)).attach()
        run_bursty(fabric, 1200)
        fabric.drain(50_000)
        hub.flush()
        return tmp_path

    def test_show_blame_tax(self, tmp_path, capsys):
        directory = str(self._artifact_dir(tmp_path))
        assert explain_main(["show", "--dir", directory]) == 0
        assert "attribution artifacts" in capsys.readouterr().out
        assert (
            explain_main(
                ["blame", "--dir", directory, "--top-k", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wakeup_stall" in out
        assert explain_main(["tax", "--dir", directory]) == 0
        assert "energy_per_flit_pj" in capsys.readouterr().out

    def test_empty_directory_exits_one(self, tmp_path, capsys):
        assert (
            explain_main(["show", "--dir", str(tmp_path)]) == 1
        )
        assert "no attribution artifacts" in capsys.readouterr().err

    def test_unknown_verb_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            explain_main(["bogus"])
        assert excinfo.value.code == 2


class TestSentinelExclusion:
    """Satellite: sentinel -1 timestamps stay out of every histogram."""

    def test_network_stats_excludes_sentinel_packets(self):
        from repro.noc.flit import Packet
        from repro.noc.stats import NetworkStats

        stats = NetworkStats(num_nodes=16, num_subnets=2)
        stats.begin_measurement(0)
        ghost = Packet(src=0, dst=5, size_bits=128, created_cycle=10)
        assert ghost.injected_cycle == -1
        stats.record_received(ghost, 40)
        assert stats.unfinished_packets == 1
        assert stats.packets_received == 0
        assert stats.latency_histogram.count == 0

    def test_telemetry_hub_excludes_sentinel_packets(self):
        from repro.noc.flit import Packet
        from repro.telemetry.hub import TelemetryHub

        fabric = gated_fabric()
        hub = TelemetryHub(fabric, period=32, out_dir=None)
        ghost = Packet(src=0, dst=5, size_bits=128, created_cycle=10)
        hub._record_packet(ghost)
        assert hub.unfinished_packets == 1
        assert hub.packets_seen == 0
        assert hub.latency.count == 0
        assert hub.summary()["unfinished_packets"] == 1

    def test_histogram_rejects_negatives_loudly(self):
        from repro.util.histogram import BoundedHistogram

        with pytest.raises(ValueError, match="negative"):
            BoundedHistogram().record(-1)
