"""Tests for memory controllers and their placement."""

from __future__ import annotations

import pytest

from repro.noc.topology import ConcentratedMesh
from repro.system.memory import (
    MemoryController,
    MemorySystem,
    place_memory_controllers,
)


class TestMemoryController:
    def test_unloaded_access_is_dram_latency(self):
        mc = MemoryController(node=0)
        assert mc.access(100) == 180

    def test_queueing_under_back_to_back_requests(self):
        mc = MemoryController(node=0)
        first = mc.access(0)
        second = mc.access(0)
        third = mc.access(0)
        assert first == 80
        assert second == 88  # 8-cycle service interval
        assert third == 96

    def test_no_queueing_when_spaced(self):
        mc = MemoryController(node=0)
        assert mc.access(0) == 80
        assert mc.access(50) == 130

    def test_requests_served_counter(self):
        mc = MemoryController(node=0)
        for cycle in range(5):
            mc.access(cycle)
        assert mc.requests_served == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryController(0, dram_latency=0)


class TestPlacement:
    def test_eight_controllers_on_edges(self):
        mesh = ConcentratedMesh(8, 8)
        nodes = place_memory_controllers(mesh, 8)
        assert len(nodes) == 8
        assert len(set(nodes)) == 8
        for node in nodes:
            _, y = mesh.coordinates(node)
            assert y in (0, 7), "MCs sit on top/bottom rows"

    def test_split_between_rows(self):
        mesh = ConcentratedMesh(8, 8)
        nodes = place_memory_controllers(mesh, 8)
        top = [n for n in nodes if mesh.coordinates(n)[1] == 0]
        assert len(top) == 4

    def test_small_mesh(self):
        mesh = ConcentratedMesh(4, 4)
        nodes = place_memory_controllers(mesh, 4)
        assert len(set(nodes)) == 4


class TestMemorySystem:
    def test_controller_for_is_stable(self):
        system = MemorySystem(ConcentratedMesh(8, 8))
        assert system.controller_for(12345) is system.controller_for(12345)

    def test_interleaving_covers_all(self):
        system = MemorySystem(ConcentratedMesh(8, 8))
        hit = {id(system.controller_for(h)) for h in range(64)}
        assert len(hit) == 8

    def test_nodes_property(self):
        system = MemorySystem(ConcentratedMesh(8, 8))
        assert len(system.nodes) == 8
