"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

# Unit tests run sweeps serially and never touch the on-disk result
# cache unless a test opts in explicitly (explicit run_sweep arguments
# always override these environment defaults).
os.environ.setdefault("REPRO_JOBS", "1")
os.environ.setdefault("REPRO_NO_CACHE", "1")

from repro.noc.config import (
    CongestionConfig,
    NocConfig,
    PowerGatingConfig,
)
from repro.noc.multinoc import MultiNocFabric


def small_config(**overrides) -> NocConfig:
    """A 4x4 mesh config that keeps tests fast."""
    defaults = dict(
        mesh_cols=4,
        mesh_rows=4,
        num_subnets=2,
        link_width_bits=128,
        voltage_v=0.625,
    )
    defaults.update(overrides)
    return NocConfig(**defaults)


def small_fabric(
    seed: int = 5, backend: str | None = None, **overrides
) -> MultiNocFabric:
    """A small fabric ready for end-to-end tests."""
    return MultiNocFabric(
        small_config(**overrides), seed=seed, backend=backend
    )


def gated_config(**overrides) -> NocConfig:
    """Small config with power gating enabled."""
    overrides.setdefault("gating", PowerGatingConfig(enabled=True))
    return small_config(**overrides)


@pytest.fixture
def fabric() -> MultiNocFabric:
    """Default small 2-subnet fabric."""
    return small_fabric()


@pytest.fixture
def single_fabric() -> MultiNocFabric:
    """Small single-subnet fabric."""
    return small_fabric(num_subnets=1, link_width_bits=256)


def drain_all(fabric: MultiNocFabric, max_cycles: int = 50_000) -> None:
    """Drain the fabric and fail the test if it cannot."""
    assert fabric.drain(max_cycles), "fabric failed to drain"


__all__ = [
    "small_config",
    "small_fabric",
    "gated_config",
    "drain_all",
    "CongestionConfig",
]
