"""Tests for the concentrated mesh topology."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.topology import ConcentratedMesh, Port

meshes = st.builds(
    ConcentratedMesh,
    cols=st.integers(1, 10),
    rows=st.integers(1, 10),
    tiles_per_node=st.integers(1, 4),
)


class TestGeometry:
    def test_counts(self):
        mesh = ConcentratedMesh(8, 8, 4)
        assert mesh.num_nodes == 64
        assert mesh.num_tiles == 256

    def test_coordinates_roundtrip(self):
        mesh = ConcentratedMesh(8, 8)
        for node in range(mesh.num_nodes):
            x, y = mesh.coordinates(node)
            assert mesh.node_at(x, y) == node

    def test_node_at_bounds(self):
        mesh = ConcentratedMesh(4, 4)
        with pytest.raises(ValueError):
            mesh.node_at(4, 0)
        with pytest.raises(ValueError):
            mesh.node_at(0, -1)

    def test_tile_node_mapping(self):
        mesh = ConcentratedMesh(8, 8, 4)
        assert mesh.tile_node(0) == 0
        assert mesh.tile_node(3) == 0
        assert mesh.tile_node(4) == 1
        assert mesh.tile_node(255) == 63
        with pytest.raises(ValueError):
            mesh.tile_node(256)

    def test_hop_distance(self):
        mesh = ConcentratedMesh(8, 8)
        assert mesh.hop_distance(0, 0) == 0
        assert mesh.hop_distance(0, 7) == 7
        assert mesh.hop_distance(0, 63) == 14

    @given(meshes, st.data())
    def test_hop_distance_symmetric(self, mesh, data):
        a = data.draw(st.integers(0, mesh.num_nodes - 1))
        b = data.draw(st.integers(0, mesh.num_nodes - 1))
        assert mesh.hop_distance(a, b) == mesh.hop_distance(b, a)


class TestConnectivity:
    def test_corner_neighbors(self):
        mesh = ConcentratedMesh(4, 4)
        assert mesh.neighbors(0) == {Port.EAST: 1, Port.SOUTH: 4}

    def test_center_neighbors(self):
        mesh = ConcentratedMesh(4, 4)
        node = mesh.node_at(1, 1)
        assert mesh.neighbors(node) == {
            Port.EAST: node + 1,
            Port.WEST: node - 1,
            Port.NORTH: node - 4,
            Port.SOUTH: node + 4,
        }

    def test_local_port_has_no_neighbor(self):
        mesh = ConcentratedMesh(4, 4)
        assert mesh.neighbor(5, Port.LOCAL) is None

    @given(meshes, st.data())
    def test_neighbors_are_reciprocal(self, mesh, data):
        node = data.draw(st.integers(0, mesh.num_nodes - 1))
        for port, other in mesh.neighbors(node).items():
            back = mesh.neighbors(other)[Port.OPPOSITE[port]]
            assert back == node

    @given(meshes)
    def test_neighbor_count_matches_degree(self, mesh):
        for node in range(mesh.num_nodes):
            x, y = mesh.coordinates(node)
            expected = sum(
                [x > 0, x < mesh.cols - 1, y > 0, y < mesh.rows - 1]
            )
            assert len(mesh.neighbors(node)) == expected


class TestRegions:
    def test_8x8_has_four_4x4_regions(self):
        mesh = ConcentratedMesh(8, 8)
        assert mesh.num_regions == 4
        for region in range(4):
            assert len(mesh.region_nodes(region)) == 16

    def test_region_of_corners(self):
        mesh = ConcentratedMesh(8, 8)
        assert mesh.region_of(mesh.node_at(0, 0)) == 0
        assert mesh.region_of(mesh.node_at(7, 0)) == 1
        assert mesh.region_of(mesh.node_at(0, 7)) == 2
        assert mesh.region_of(mesh.node_at(7, 7)) == 3

    def test_region_nodes_partition(self):
        mesh = ConcentratedMesh(8, 8)
        seen = set()
        for region in range(mesh.num_regions):
            nodes = mesh.region_nodes(region)
            assert not seen & set(nodes)
            seen.update(nodes)
        assert seen == set(range(mesh.num_nodes))

    @given(meshes)
    def test_regions_partition_any_mesh(self, mesh):
        counts = [0] * mesh.num_regions
        for node in range(mesh.num_nodes):
            region = mesh.region_of(node)
            assert 0 <= region < mesh.num_regions
            counts[region] += 1
        assert sum(counts) == mesh.num_nodes

    def test_region_out_of_range(self):
        mesh = ConcentratedMesh(4, 4)
        with pytest.raises(ValueError):
            mesh.region_nodes(4)


class TestValidation:
    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            ConcentratedMesh(0, 4)
        with pytest.raises(ValueError):
            ConcentratedMesh(4, 0)

    def test_node_out_of_range(self):
        mesh = ConcentratedMesh(2, 2)
        with pytest.raises(ValueError):
            mesh.coordinates(4)
