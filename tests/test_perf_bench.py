"""Tests for benchmark records and the regression comparator.

The compare CLI is CI's soft regression gate, so its failure modes are
the interesting part: a synthetic 2x slowdown must be detected (exit
1), while missing baselines, benchmarks absent from either side, scale
mismatches, and corrupt files must degrade to reported notes — never a
crash, never a false failure.
"""

from __future__ import annotations

import json

from repro.perf.bench import (
    BENCH_SCHEMA,
    bench_filename,
    compare_bench_dirs,
    host_fingerprint,
    load_bench_dir,
    make_bench_record,
    validate_bench_record,
    write_bench_record,
)


def _record(name: str, wall: float, scale: float = 0.1) -> dict:
    return make_bench_record(
        name=name, wall_seconds=wall, scale=scale, jobs=2,
        sim_cycles=10_000, sim_flits=50_000,
    )


class TestRecords:
    def test_make_record_is_schema_valid(self):
        record = _record("fig06", 2.5)
        assert record["schema"] == BENCH_SCHEMA
        assert validate_bench_record(record) == []
        assert record["cycles_per_sec"] == 10_000 / 2.5
        assert record["host"] == host_fingerprint()

    def test_validate_rejects_broken_records(self):
        assert validate_bench_record("nope")
        assert validate_bench_record({})
        bad_wall = _record("x", 1.0)
        bad_wall["wall_seconds"] = 0.0
        assert any(
            "positive" in err for err in validate_bench_record(bad_wall)
        )
        bad_type = _record("x", 1.0)
        bad_type["jobs"] = True  # bool is not an acceptable int here
        assert any(
            "jobs" in err for err in validate_bench_record(bad_type)
        )
        bad_schema = _record("x", 1.0)
        bad_schema["schema"] = "other/9"
        assert validate_bench_record(bad_schema)

    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_bench_record(str(tmp_path), _record("fig06", 2.5))
        assert path.endswith(bench_filename("fig06"))
        records, notes = load_bench_dir(str(tmp_path))
        assert notes == []
        assert records["fig06"]["wall_seconds"] == 2.5

    def test_load_skips_invalid_files_with_notes(self, tmp_path):
        write_bench_record(str(tmp_path), _record("good", 1.0))
        (tmp_path / "BENCH_corrupt.json").write_text("{not json")
        (tmp_path / "BENCH_invalid.json").write_text(
            json.dumps({"schema": BENCH_SCHEMA})
        )
        (tmp_path / "unrelated.json").write_text("{}")
        records, notes = load_bench_dir(str(tmp_path))
        assert set(records) == {"good"}
        assert len(notes) == 2

    def test_load_missing_directory_is_a_note(self, tmp_path):
        records, notes = load_bench_dir(str(tmp_path / "nowhere"))
        assert records == {}
        assert len(notes) == 1


class TestCompare:
    def test_detects_synthetic_2x_slowdown(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 2.0))
        write_bench_record(str(new), _record("fig06", 4.0))  # 2x slower
        comparison = compare_bench_dirs(
            str(old), str(new), threshold_pct=25.0
        )
        assert comparison.exit_code == 1
        assert comparison.regressions == ["fig06"]
        rendered = comparison.render()
        assert "regressed" in rendered
        assert "REGRESSED: fig06" in rendered
        assert "+100.0" in rendered

    def test_within_threshold_is_ok(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 2.0))
        write_bench_record(str(new), _record("fig06", 2.2))
        comparison = compare_bench_dirs(
            str(old), str(new), threshold_pct=25.0
        )
        assert comparison.exit_code == 0
        assert comparison.rows[0]["status"] == "ok"

    def test_improvement_is_reported_not_failed(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 4.0))
        write_bench_record(str(new), _record("fig06", 1.0))
        comparison = compare_bench_dirs(str(old), str(new))
        assert comparison.exit_code == 0
        assert comparison.rows[0]["status"] == "improved"

    def test_missing_baseline_reports_new_not_crash(self, tmp_path):
        """The graceful-degradation fix: a benchmark with no baseline
        record (or a wholly absent baseline directory) reports as
        ``new`` with exit status 0."""
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(new), _record("fig06", 2.0))
        # old directory does not even exist
        comparison = compare_bench_dirs(str(old), str(new))
        assert comparison.exit_code == 0
        assert comparison.rows[0]["status"] == "new"
        assert any("not a readable directory" in n for n in comparison.notes)

    def test_partial_baseline_mixes_new_and_compared(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 2.0))
        write_bench_record(str(new), _record("fig06", 2.1))
        write_bench_record(str(new), _record("fig07", 1.0))
        comparison = compare_bench_dirs(str(old), str(new))
        statuses = {
            row["benchmark"]: row["status"] for row in comparison.rows
        }
        assert statuses == {"fig06": "ok", "fig07": "new"}
        assert comparison.exit_code == 0

    def test_benchmark_missing_from_new_set(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 2.0))
        new.mkdir()
        comparison = compare_bench_dirs(str(old), str(new))
        assert comparison.exit_code == 0
        assert comparison.rows[0]["status"] == "missing"

    def test_scale_mismatch_is_skipped(self, tmp_path):
        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 2.0, scale=0.1))
        write_bench_record(str(new), _record("fig06", 9.0, scale=1.0))
        comparison = compare_bench_dirs(str(old), str(new))
        assert comparison.exit_code == 0
        assert comparison.rows[0]["status"] == "skipped"
        assert any("scale mismatch" in note for note in comparison.notes)

    def test_empty_directories_render_without_rows(self, tmp_path):
        (tmp_path / "old").mkdir()
        (tmp_path / "new").mkdir()
        comparison = compare_bench_dirs(
            str(tmp_path / "old"), str(tmp_path / "new")
        )
        assert comparison.exit_code == 0
        assert "no benchmarks found" in comparison.render()


class TestCompareCli:
    def test_cli_exit_codes_and_output(self, tmp_path, capsys):
        from repro.perf.__main__ import main

        old, new = tmp_path / "old", tmp_path / "new"
        write_bench_record(str(old), _record("fig06", 2.0))
        write_bench_record(str(new), _record("fig06", 4.0))
        assert main(["compare", str(old), str(new)]) == 1
        assert "regressed" in capsys.readouterr().out
        # A generous threshold turns the same diff into a pass.
        assert (
            main(["compare", str(old), str(new), "--threshold", "150"])
            == 0
        )

    def test_cli_survives_missing_baseline(self, tmp_path, capsys):
        from repro.perf.__main__ import main

        new = tmp_path / "new"
        write_bench_record(str(new), _record("fig06", 2.0))
        assert main(["compare", str(tmp_path / "nowhere"), str(new)]) == 0
        out = capsys.readouterr().out
        assert "new" in out
        assert "note:" in out
