"""Tests for the catnap-experiments command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    main,
    render_experiment,
    run_experiment,
)


class TestMain:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig08" in capsys.readouterr().out

    def test_runs_table02(self, capsys):
        assert main(["table02"]) == 0
        out = capsys.readouterr().out
        assert "2.900" in out or "2.9" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["fig07", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig07.txt").exists()

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["nope"])


class TestRenderExperiment:
    def test_chartless_experiment_is_table_only(self):
        result = run_experiment("table02")
        assert render_experiment(result) == result.to_table()

    def test_chart_specs_only_reference_known_experiments(self):
        from repro.experiments.cli import _CHART_SPECS

        assert set(_CHART_SPECS) <= set(EXPERIMENTS)


class TestRegistry:
    def test_paper_experiments_subset(self):
        assert set(PAPER_EXPERIMENTS) <= set(EXPERIMENTS)

    def test_extension_registered(self):
        assert "ext_class_partition" in EXPERIMENTS
