"""Tests for the catnap-experiments command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    main,
    render_experiment,
    run_experiment,
)


class TestMain:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig08" in capsys.readouterr().out

    def test_runs_table02(self, capsys):
        assert main(["table02"]) == 0
        out = capsys.readouterr().out
        assert "2.900" in out or "2.9" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["fig07", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig07.txt").exists()

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["nope"])


class TestRenderExperiment:
    def test_chartless_experiment_is_table_only(self):
        result = run_experiment("table02")
        assert render_experiment(result) == result.to_table()

    def test_chart_specs_only_reference_known_experiments(self):
        from repro.experiments.cli import _CHART_SPECS

        assert set(_CHART_SPECS) <= set(EXPERIMENTS)


class TestRegistry:
    def test_paper_experiments_subset(self):
        assert set(PAPER_EXPERIMENTS) <= set(EXPERIMENTS)

    def test_extension_registered(self):
        assert "ext_class_partition" in EXPERIMENTS


class TestTelemetryFlags:
    def test_trace_out_implies_telemetry_and_writes_artifacts(
        self, tmp_path, capsys, monkeypatch
    ):
        import os

        # main() exports these for sweep workers; the test must leave
        # no trace in the process environment afterwards.  delenv on
        # an *absent* var registers nothing to undo, so a bare delenv
        # would let main()'s os.environ writes outlive the test —
        # setenv first registers restore-to-absent, then delenv clears
        # the placeholder for the call.
        for name in ("REPRO_TELEMETRY", "REPRO_TELEMETRY_DIR"):
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        out_dir = tmp_path / "tel"
        assert (
            main(
                [
                    "fig06",
                    "--scale",
                    "0.02",
                    "--trace-out",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert os.environ["REPRO_TELEMETRY"] == "1"
        names = sorted(p.name for p in out_dir.iterdir())
        assert any(n.endswith(".trace.json") for n in names)
        assert any(n.endswith(".timeseries.json") for n in names)
        err = capsys.readouterr().err
        assert "telemetry:" in err

        from repro.telemetry.__main__ import main as telemetry_main

        assert telemetry_main(["validate", str(out_dir)]) == 0

    def test_percentiles_flag_keeps_tables_without_the_columns(
        self, capsys
    ):
        assert main(["table02", "--percentiles"]) == 0
        out = capsys.readouterr().out
        assert "latency_p50" not in out

    def test_percentiles_render_appends_columns(self):
        from dataclasses import replace

        from repro.experiments.common import ExperimentResult

        rows = [
            {
                "load": 0.1,
                "latency": 20.0,
                "latency_p50": 19.0,
                "latency_p95": 30.0,
                "latency_p99": 40.0,
            }
        ]
        result = ExperimentResult(
            "figX", "t", rows, columns=["load", "latency"]
        )
        plain = render_experiment(result)
        with_pct = render_experiment(result, percentiles=True)
        assert "latency_p95" not in plain
        assert "latency_p95" in with_pct
        # The default rendering is untouched (paper tables stay
        # byte-identical) and the result object is not mutated.
        assert render_experiment(result) == plain
        assert result.columns == ["load", "latency"]


class TestFaultFlags:
    def test_bad_spec_is_a_usage_error(self, capsys):
        # Validation happens at argument-parsing time: a typo must
        # exit with argparse's usage status, not as one captured
        # failure per sweep point (which would render an empty table
        # and exit 0).
        with pytest.raises(SystemExit) as excinfo:
            main(["fig06", "--faults", "rate=banana"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--faults" in err

    def test_good_spec_sets_env_and_disables_cache(self, monkeypatch):
        import os

        # Same restore-to-absent dance as the telemetry-flag test:
        # main() writes os.environ for forked sweep workers, and the
        # test must not leak that into later tests.
        for name in ("REPRO_FAULTS", "REPRO_NO_CACHE"):
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)
        assert main(["fig14", "--scale", "0.02", "--faults", "rate=0.001;seed=3"]) == 0
        assert os.environ["REPRO_FAULTS"] == "rate=0.001;seed=3"
        # Faulted rows must never enter (or be served from) the
        # healthy-result cache.
        assert os.environ["REPRO_NO_CACHE"] == "1"


class TestBackendFlag:
    def test_unknown_backend_is_a_usage_error(self, capsys):
        # Validation happens at argument-parsing time (mirrors
        # --faults): a typo must exit 2 with a usage error naming the
        # valid backends, not crash deep in fabric construction.
        with pytest.raises(SystemExit) as excinfo:
            main(["fig06", "--backend", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--backend" in err
        assert "bogus" in err
        assert "dense" in err and "skip" in err

    def test_good_backend_sets_env_and_disables_cache(self, monkeypatch):
        import os

        for name in ("REPRO_BACKEND", "REPRO_NO_CACHE"):
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)
        assert main(["fig14", "--scale", "0.02", "--backend", "skip"]) == 0
        assert os.environ["REPRO_BACKEND"] == "skip"
        # A cache hit would silently skip exercising the requested
        # kernel, so any non-default backend disables caching.
        assert os.environ["REPRO_NO_CACHE"] == "1"

    def test_default_backend_keeps_cache(self, monkeypatch, tmp_path):
        import os

        for name in ("REPRO_BACKEND", "REPRO_NO_CACHE"):
            monkeypatch.setenv(name, "placeholder")
            monkeypatch.delenv(name)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig14", "--scale", "0.02", "--backend", "dense"]) == 0
        assert os.environ["REPRO_BACKEND"] == "dense"
        assert "REPRO_NO_CACHE" not in os.environ

    def test_point_failed_is_loud_without_progress(self, capsys):
        from repro.experiments.cli import _TallyObserver
        from repro.experiments.common import synthetic_phases
        from repro.experiments.runner import PointSpec
        from repro.noc.config import NocConfig

        spec = PointSpec.synthetic(
            NocConfig.mesh_64_core(), "uniform", 0.1,
            synthetic_phases(0.04), 7,
        )
        recorded = []

        class _Extra:
            def point_failed(self, index, spec, error):
                recorded.append((index, error))

        tally = _TallyObserver(progress=False, extra=[_Extra()])
        tally.point_failed(3, spec, "ValueError: boom")
        err = capsys.readouterr().err
        assert "FAILED" in err and "boom" in err
        assert recorded == [(3, "ValueError: boom")]
