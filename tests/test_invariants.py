"""Runtime invariant checker: attachment, green runs, seeded mutations.

The mutation tests are the contract of ``repro.analysis.invariants``:
each deliberately corrupts one piece of distributed simulator state (a
dropped credit, a duplicated flit, a skipped wakeup, a skipped priority
subnet) and asserts the checker reports the precise invariant with a
diagnostic naming the location.
"""

from __future__ import annotations

import pytest

from tests.conftest import gated_config, small_fabric

from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    _CheckedPolicy,
    _find_cycle,
    checking_enabled,
    maybe_attach,
)
from repro.core.policies import CatnapPolicy
from repro.noc.flit import Flit, Packet
from repro.noc.multinoc import MultiNocFabric
from repro.noc.router import PowerState
from repro.noc.topology import Port


def checked_fabric(backend=None, **overrides):
    fabric = small_fabric(backend=backend, **overrides)
    return fabric, InvariantChecker(fabric).attach()


def offer_traffic(fabric: MultiNocFabric, packets: int = 20) -> None:
    for i in range(packets):
        src, dst = i % 16, (i * 7 + 3) % 16
        if src != dst:
            fabric.offer(Packet(src=src, dst=dst, size_bits=512))


# ----------------------------------------------------------------------
# Attachment and overhead
# ----------------------------------------------------------------------


class TestAttachment:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not checking_enabled()
        fabric = small_fabric()
        assert fabric.invariant_checker is None
        # Zero overhead off: the class method is not shadowed.
        assert "step" not in vars(fabric)
        assert all(
            isinstance(ni.policy, CatnapPolicy) for ni in fabric.nis
        )

    def test_zero_value_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not checking_enabled()
        assert small_fabric().invariant_checker is None

    def test_env_var_attaches_checker(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        fabric = small_fabric()
        assert isinstance(fabric.invariant_checker, InvariantChecker)
        assert "step" in vars(fabric)
        assert all(
            isinstance(ni.policy, _CheckedPolicy) for ni in fabric.nis
        )

    def test_maybe_attach_respects_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        fabric = small_fabric()
        assert maybe_attach(fabric) is None
        monkeypatch.setenv("REPRO_CHECK", "1")
        checker = maybe_attach(fabric)
        assert checker is not None
        checker.detach()

    def test_detach_restores_fast_path(self):
        fabric, checker = checked_fabric()
        checker.detach()
        assert "step" not in vars(fabric)
        assert all(
            isinstance(ni.policy, CatnapPolicy) for ni in fabric.nis
        )

    def test_double_attach_rejected(self):
        fabric, checker = checked_fabric()
        with pytest.raises(RuntimeError, match="already attached"):
            checker.attach()

    def test_parameter_validation(self):
        fabric = small_fabric()
        with pytest.raises(ValueError):
            InvariantChecker(fabric, interval=0)
        with pytest.raises(ValueError):
            InvariantChecker(fabric, stall_cycles=0)

    def test_interval_samples_cycles(self):
        fabric = small_fabric()
        checker = InvariantChecker(fabric, interval=5).attach()
        fabric.run(20)
        assert checker.counts["deadlock"] == 4

    def test_checked_policy_delegates_attributes(self):
        fabric, _checker = checked_fabric()
        policy = fabric.nis[0].policy
        assert isinstance(policy, _CheckedPolicy)
        assert policy.num_subnets == fabric.config.num_subnets

    def test_violation_message_format(self):
        err = InvariantViolation("credit-conservation", 42, "boom")
        assert str(err) == "[credit-conservation] cycle 42: boom"
        assert err.invariant == "credit-conservation"
        assert err.cycle == 42
        assert err.details == "boom"


# ----------------------------------------------------------------------
# Green runs: a correct simulator passes every law
# ----------------------------------------------------------------------


class TestGreenRuns:
    def test_checked_traffic_run_stays_green(self):
        fabric, checker = checked_fabric()
        offer_traffic(fabric)
        assert fabric.drain()
        for name in (
            "gated-arrival",
            "flit-conservation",
            "credit-conservation",
            "router-accounting",
            "gating-state",
            "priority-selection",
            "deadlock",
        ):
            assert checker.counts[name] > 0, name

    def test_checked_gated_run_stays_green(self):
        fabric = MultiNocFabric(gated_config(), seed=9)
        checker = InvariantChecker(fabric).attach()
        offer_traffic(fabric)
        assert fabric.drain()
        fabric.run(400)  # idle: higher-order routers actually gate
        assert any(
            router.power_state == PowerState.SLEEP
            for router in fabric.subnets[1].routers
        )
        assert checker.counts["gating-state"] >= 400

    def test_watchdog_quiet_on_live_and_idle_fabric(self):
        fabric = small_fabric()
        InvariantChecker(fabric, stall_cycles=16).attach()
        offer_traffic(fabric, packets=10)
        assert fabric.drain()
        fabric.run(100)  # idle, in-flight == 0: the watchdog resets


# ----------------------------------------------------------------------
# Seeded mutations (the contract: each is caught, precisely)
# ----------------------------------------------------------------------


# Each mutation is parametrized over both simulation kernels: time is
# advanced through ``fabric.run`` (the backend entry point), so the
# skip kernel's checker composition must catch exactly what the dense
# per-cycle path catches.
@pytest.mark.parametrize("backend", ["dense", "skip"])
class TestMutations:
    def test_dropped_credit_is_caught(self, backend):
        fabric, _checker = checked_fabric(backend=backend)
        router = fabric.subnets[0].routers[5]  # interior node
        # A port wired to a real downstream router: edge ports have no
        # credit loop and are (correctly) outside the conservation law.
        port = next(
            p
            for p in range(1, Port.COUNT)
            if router.neighbor_router[p] is not None
        )
        router.credits[port][0] -= 1
        with pytest.raises(InvariantViolation) as err:
            fabric.run(1)
        assert err.value.invariant == "credit-conservation"
        assert "credit was lost, forged, or returned twice" in (
            err.value.details
        )
        assert f"port {Port.NAMES[port]}" in err.value.details
        assert f"{router.node}->" in err.value.details

    def test_forged_credit_is_caught(self, backend):
        fabric, _checker = checked_fabric(backend=backend)
        router = fabric.subnets[0].routers[5]
        port = next(
            p
            for p in range(1, Port.COUNT)
            if router.neighbor_router[p] is not None
        )
        router.credits[port][0] += 1
        with pytest.raises(InvariantViolation) as err:
            fabric.run(1)
        assert err.value.invariant == "credit-conservation"

    def test_dropped_injection_credit_is_caught(self, backend):
        fabric, _checker = checked_fabric(backend=backend)
        fabric.nis[3]._credits[0][0] -= 1
        with pytest.raises(InvariantViolation) as err:
            fabric.run(1)
        assert err.value.invariant == "credit-conservation"
        assert "NI->router at node 3" in err.value.details

    def test_duplicated_flit_is_caught(self, backend):
        fabric, _checker = checked_fabric(backend=backend)
        fabric.offer(Packet(src=0, dst=3, size_bits=128))
        network = fabric.subnets[0]
        for _ in range(50):
            if any(network._ring):
                break
            fabric.run(1)
        slot = next(s for s in network._ring if s)
        slot.append(slot[0])  # the same flit now traverses twice
        with pytest.raises(InvariantViolation) as err:
            fabric.run(1)
        assert err.value.invariant == "flit-conservation"
        assert "lost or duplicated" in err.value.details
        assert "subnet 0" in err.value.details

    def test_wake_skipped_router_with_buffered_flits_is_caught(
        self, backend
    ):
        fabric = MultiNocFabric(gated_config(), seed=9, backend=backend)
        checker = InvariantChecker(fabric).attach()
        offer_traffic(fabric, packets=8)
        router = None
        for _ in range(200):
            fabric.run(1)
            router = next(
                (
                    r
                    for r in fabric.subnets[0].routers
                    if r.buffered_flits
                ),
                None,
            )
            if router is not None:
                break
        assert router is not None, "traffic never buffered a flit"
        router.power_state = PowerState.SLEEP  # skip the drain protocol
        with pytest.raises(InvariantViolation) as err:
            checker.check_now(fabric.cycle)
        assert err.value.invariant == "gated-arrival"
        assert "a gated router must be drained" in err.value.details
        assert f"node {router.node}" in err.value.details

    def test_flit_in_flight_toward_gated_router_is_caught(self, backend):
        fabric = MultiNocFabric(gated_config(), seed=9, backend=backend)
        checker = InvariantChecker(fabric).attach()
        network = fabric.subnets[1]
        router = network.routers[1]
        flit = Flit(
            packet=Packet(src=0, dst=5, size_bits=128),
            is_head=True,
            is_tail=True,
            index=0,
            route=Port.EAST,
        )
        network._ring[0].append((router, Port.WEST, 0, flit))
        router.power_state = PowerState.SLEEP
        with pytest.raises(InvariantViolation) as err:
            checker.check_now(fabric.cycle)
        assert err.value.invariant == "gated-arrival"
        assert "in flight toward" in err.value.details

    def test_priority_skip_is_caught(self, backend):
        class _SkippingPolicy:
            """Strict-priority claimant that actually skips subnet 0."""

            strict_priority = True

            def __init__(self, monitor):
                self.monitor = monitor

            def select(self, node, cycle, packet=None):
                return 1

        fabric, checker = checked_fabric(backend=backend)
        fabric.nis[0].policy = _CheckedPolicy(
            _SkippingPolicy(fabric.monitor), checker
        )
        fabric.offer(Packet(src=0, dst=5, size_bits=128))
        with pytest.raises(InvariantViolation) as err:
            for _ in range(20):
                fabric.run(1)
        assert err.value.invariant == "priority-selection"
        assert "subnet 1" in err.value.details
        assert "[0]" in err.value.details  # names the skipped subnet

    def test_lost_flit_accounting_is_caught(self, backend):
        fabric, _checker = checked_fabric(backend=backend)
        network = fabric.subnets[0]
        network.counters.flits_injected += 1  # phantom injection
        network.flits_in_network += 1
        with pytest.raises(InvariantViolation) as err:
            fabric.run(1)
        assert err.value.invariant == "flit-conservation"


# ----------------------------------------------------------------------
# Deadlock watchdog and dependency witness
# ----------------------------------------------------------------------


def plant_circular_wait(fabric: MultiNocFabric) -> None:
    """Two head flits waiting on each other across the 0<->1 link."""
    network = fabric.subnets[0]
    r0, r1 = network.routers[0], network.routers[1]
    r0.ports[Port.EAST].push(
        0,
        Flit(
            packet=Packet(src=1, dst=2, size_bits=128),
            is_head=True,
            is_tail=True,
            index=0,
            route=Port.EAST,
        ),
    )
    r1.ports[Port.WEST].push(
        0,
        Flit(
            packet=Packet(src=0, dst=0, size_bits=128),
            is_head=True,
            is_tail=True,
            index=0,
            route=Port.WEST,
        ),
    )
    for vc in range(fabric.config.vcs_per_port):
        r0.credits[Port.EAST][vc] = 0
        r1.credits[Port.WEST][vc] = 0


class TestDeadlock:
    def test_find_cycle_detects_loop(self):
        a, b, c = (0, 0, 1, 0), (0, 1, 2, 0), (0, 2, 1, 0)
        cycle = _find_cycle({a: [b], b: [c], c: [a]})
        assert cycle is not None
        assert set(cycle) == {a, b, c}

    def test_find_cycle_none_on_dag(self):
        a, b, c = (0, 0, 1, 0), (0, 1, 2, 0), (0, 2, 1, 0)
        assert _find_cycle({a: [b], b: [c], c: []}) is None

    def test_find_cycle_ignores_dangling_edges(self):
        a = (0, 0, 1, 0)
        assert _find_cycle({a: [(9, 9, 9, 9)]}) is None

    def test_witness_reports_circular_wait(self):
        fabric, checker = checked_fabric()
        plant_circular_wait(fabric)
        witness = checker._dependency_witness()
        assert "channel-dependency cycle (circular wait)" in witness
        assert "node 0 in-port east vc 0" in witness
        assert "node 1 in-port west vc 0" in witness

    def test_witness_without_cycle_lists_blocked_heads(self):
        fabric, checker = checked_fabric()
        network = fabric.subnets[0]
        r0 = network.routers[0]
        r0.ports[Port.LOCAL].push(
            0,
            Flit(
                packet=Packet(src=0, dst=1, size_bits=128),
                is_head=True,
                is_tail=True,
                index=0,
                route=Port.EAST,
            ),
        )
        for vc in range(fabric.config.vcs_per_port):
            r0.credits[Port.EAST][vc] = 0
        witness = checker._dependency_witness()
        assert "no dependency cycle found" in witness
        assert "node 0 in-port local vc 0" in witness

    def test_stall_watchdog_raises_with_witness(self):
        fabric = small_fabric()
        checker = InvariantChecker(fabric, stall_cycles=3).attach()
        plant_circular_wait(fabric)
        # The planted flits bypass the counters on purpose, so drive
        # the watchdog directly: zero progress, flits in the network.
        fabric.subnets[0].flits_in_network = 2
        with pytest.raises(InvariantViolation) as err:
            for _ in range(10):
                checker._check_stall(fabric.cycle)
        assert err.value.invariant == "deadlock"
        assert "no buffer event for" in err.value.details
        assert "channel-dependency cycle" in err.value.details
