"""Tests for work metering and sweep throughput/utilization accounting.

The sweep runner attributes per-point execution time to worker pids
and ships simulated-work deltas from pool workers back to the parent;
these tests pin down that accounting for the serial (``REPRO_JOBS=1``)
and parallel (``REPRO_JOBS=4``) paths.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import synthetic_phases
from repro.experiments.runner import PointSpec, SweepObserver, run_sweep
from repro.noc.config import NocConfig
from repro.perf import meters

TINY = synthetic_phases(0.04)


def tiny_specs(loads=(0.02, 0.10, 0.20, 0.30)):
    config = NocConfig.multi_noc(2)
    return [
        PointSpec.synthetic(config, "uniform", load, TINY, seed=7)
        for load in loads
    ]


class RecordingObserver(SweepObserver):
    def __init__(self):
        self.stats = None

    def sweep_finished(self, stats):
        self.stats = stats


class TestWorkMeter:
    def test_add_snapshot_reset(self):
        meter = meters.WorkMeter()
        meter.add(100, 400)
        meter.add(1, 2)
        assert meter.snapshot() == (101, 402)
        assert meter.reset() == (101, 402)
        assert meter.snapshot() == (0, 0)

    def test_format_rate(self):
        assert meters.format_rate(875.0) == "875"
        assert meters.format_rate(12_300.0) == "12.3k"
        assert meters.format_rate(4_600_000.0) == "4.6M"
        assert meters.format_rate(1_200_000_000.0) == "1.2G"

    def test_throughput_suffix(self):
        assert meters.throughput_suffix(0, 0, 1.0) == ""
        assert meters.throughput_suffix(100, 100, 0.0) == ""
        suffix = meters.throughput_suffix(1_200_000, 4_600_000, 1.0)
        assert suffix == "1.2M cycles/s, 4.6M flits/s"


class _UtilizationMixin:
    jobs = 1

    def run(self):
        specs = tiny_specs()
        observer = RecordingObserver()
        before = meters.WORK.snapshot()
        rows = run_sweep(specs, jobs=self.jobs, cache=None, observer=observer)
        after = meters.WORK.snapshot()
        return specs, rows, observer.stats, before, after

    def test_utilization_accounting(self):
        specs, rows, stats, before, after = self.run()
        assert len(rows) == len(specs)
        assert stats.workers == min(self.jobs, len(specs))
        assert stats.exec_wall_seconds > 0
        # Busy time is attributed per worker pid and sums to the total
        # in-point execution time exactly (same floats, same source).
        busy = sum(stats.worker_busy_seconds.values())
        assert busy == pytest.approx(sum(stats.point_seconds))
        assert len(stats.worker_busy_seconds) <= stats.workers
        # Utilization is a fraction of the execution section; points
        # dominate it, so it must be high but can never exceed 1 by
        # more than clock-resolution noise.
        utilization = stats.worker_utilization()
        assert 0.0 < utilization <= 1.001
        if self.jobs == 1:
            # Serial: the lone worker is busy the whole section except
            # cache/observer glue around the points.
            assert busy <= stats.exec_wall_seconds * 1.001
            assert utilization > 0.5

    def test_sim_work_flows_to_stats_and_process_meter(self):
        specs, rows, stats, before, after = self.run()
        # Each synthetic point simulates warmup+measure+cooldown plus
        # drain; the reported cycle totals ride back through the stats.
        assert stats.sim_cycles >= len(specs) * TINY.total
        assert stats.sim_flits > 0
        # ... and into this process's lifetime meter, whether the work
        # happened in-process (serial) or in forked workers (shipped
        # deltas folded in by the parent).
        assert after[0] - before[0] == stats.sim_cycles
        assert after[1] - before[1] == stats.sim_flits


class TestSerialUtilization(_UtilizationMixin):
    jobs = 1


class TestParallelUtilization(_UtilizationMixin):
    jobs = 4


class TestCachedSweepMetering:
    def test_cache_hits_simulate_nothing(self, tmp_path):
        from repro.experiments.runner import SweepCache

        specs = tiny_specs(loads=(0.02, 0.10))
        cache = SweepCache(tmp_path)
        run_sweep(specs, jobs=1, cache=cache)
        observer = RecordingObserver()
        before = meters.WORK.snapshot()
        run_sweep(specs, jobs=1, cache=cache, observer=observer)
        assert observer.stats.cache_hits == len(specs)
        assert observer.stats.sim_cycles == 0
        assert observer.stats.sim_flits == 0
        assert observer.stats.workers == 0
        assert observer.stats.worker_utilization() == 0.0
        assert meters.WORK.snapshot() == before


class TestProgressLine:
    def test_sweep_summary_line_carries_rates_and_utilization(self):
        import io

        from repro.experiments.runner import ProgressObserver

        stream = io.StringIO()
        observer = ProgressObserver(stream=stream)
        run_sweep(
            tiny_specs(loads=(0.02,)), jobs=1, cache=None, observer=observer
        )
        summary = stream.getvalue().splitlines()[-1]
        assert "cycles/s" in summary
        assert "flits/s" in summary
        assert "% busy" in summary

    def test_nothing_simulated_prints_no_rates(self):
        import io

        from repro.experiments.runner import ProgressObserver, SweepStats

        stream = io.StringIO()
        observer = ProgressObserver(stream=stream)
        observer.sweep_finished(SweepStats(points=3, cache_hits=3))
        summary = stream.getvalue()
        assert "cycles/s" not in summary
        assert "% busy" not in summary


class TestPointMeterIsolation:
    def test_begin_point_drops_inherited_totals(self):
        meters._POINT.add(5, 5)
        meters.begin_point()
        assert meters.drain_point() == (0, 0)

    def test_note_report_feeds_both_meters(self):
        fabric_cycles = 123
        activity = [{"crossbar_traversals": 7}, {"crossbar_traversals": 3}]

        class FakeReport:
            cycles = fabric_cycles

        FakeReport.activity = activity
        before = meters.WORK.snapshot()
        meters.begin_point()
        meters.note_report(FakeReport())
        assert meters.drain_point() == (123, 10)
        after = meters.WORK.snapshot()
        assert (after[0] - before[0], after[1] - before[1]) == (123, 10)


def test_env_jobs_respected_in_worker_count(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    observer = RecordingObserver()
    run_sweep(tiny_specs(), cache=None, observer=observer)
    assert observer.stats.workers == 3
    monkeypatch.delenv("REPRO_JOBS")
    assert "REPRO_JOBS" not in os.environ
