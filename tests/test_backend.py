"""FabricBackend contract: registry, selection, and dense/skip equality.

The skip kernel's contract is byte-identical *state*, not merely
similar tables: after the same seeded workload, the fabric report, the
fabric and source RNG positions, and the cycle counter must all match
the dense reference exactly.  The skip-specific tests pin down the
kernel's defining property — idle and gated routers cost no Python
work (``Router.step`` is never invoked by the kernel).
"""

from __future__ import annotations

import dataclasses

import pytest

from tests.conftest import gated_config, small_config

from repro.noc.backend import (
    DEFAULT_BACKEND,
    DenseBackend,
    SkipBackend,
    backend_from_env,
    backend_names,
    make_backend,
)
from repro.noc.multinoc import MultiNocFabric
from repro.noc.router import PowerState, Router
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------


class TestRegistry:
    def test_backend_names(self):
        assert backend_names() == ("dense", "skip")
        assert DEFAULT_BACKEND == "dense"

    def test_make_backend_unknown_name(self, fabric):
        with pytest.raises(ValueError) as err:
            make_backend("bogus", fabric)
        assert "bogus" in str(err.value)
        assert "dense" in str(err.value) and "skip" in str(err.value)

    def test_env_default_is_dense(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_from_env() == "dense"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "skip")
        assert backend_from_env() == "skip"
        fabric = MultiNocFabric(small_config(), seed=5)
        assert isinstance(fabric.backend, SkipBackend)

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "skip")
        fabric = MultiNocFabric(small_config(), seed=5, backend="dense")
        assert isinstance(fabric.backend, DenseBackend)

    def test_unknown_env_backend_fails_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError):
            MultiNocFabric(small_config(), seed=5)


# ----------------------------------------------------------------------
# Dense/skip state equivalence
# ----------------------------------------------------------------------


def _final_state(config, backend: str, cycles: int, load: float):
    fabric = MultiNocFabric(config, seed=11, backend=backend)
    source = SyntheticTrafficSource(
        fabric, make_pattern("uniform", fabric.mesh), load, 128, seed=11
    )
    fabric.backend.run(cycles, source)
    assert fabric.drain()
    return (
        dataclasses.asdict(fabric.report()),
        fabric.rng.getstate(),
        source.rng.getstate(),
        fabric.cycle,
    )


class TestEquivalence:
    @pytest.mark.parametrize(
        "config_fn, load",
        [
            pytest.param(small_config, 0.2, id="plain-2sub"),
            pytest.param(gated_config, 0.2, id="gated-2sub"),
            pytest.param(gated_config, 0.01, id="gated-idle"),
            pytest.param(
                lambda: small_config(num_subnets=1, link_width_bits=256),
                0.3,
                id="single-subnet",
            ),
        ],
    )
    def test_skip_matches_dense_state(self, config_fn, load):
        dense = _final_state(config_fn(), "dense", 500, load)
        skip = _final_state(config_fn(), "skip", 500, load)
        assert dense == skip

    def test_idle_run_matches_dense_state(self):
        # No source at all: the skip kernel covers the whole span with
        # quiescence jumps, yet gating statistics must match the dense
        # cycle-by-cycle accounting exactly.
        def idle(backend):
            fabric = MultiNocFabric(
                gated_config(), seed=3, backend=backend
            )
            fabric.run(1000)
            return dataclasses.asdict(fabric.report()), fabric.cycle

        assert idle("dense") == idle("skip")


# ----------------------------------------------------------------------
# Skip-kernel specifics
# ----------------------------------------------------------------------


class TestSkipKernel:
    def test_gated_subnet_advances_without_router_step(self, monkeypatch):
        """A fully gated subnet advances the clock at zero router cost:
        the skip kernel never invokes ``Router.step`` at all."""
        fabric = MultiNocFabric(gated_config(), seed=9, backend="skip")
        fabric.run(600)  # idle warmup: higher-order routers gate off
        assert all(
            router.power_state == PowerState.SLEEP
            for router in fabric.subnets[1].routers
        )
        calls = []
        real_step = Router.step
        monkeypatch.setattr(
            Router,
            "step",
            lambda self, cycle: (calls.append(self), real_step(self, cycle)),
        )
        start = fabric.cycle
        fabric.run(200)
        assert fabric.cycle == start + 200
        assert calls == []

    def test_shadowed_step_defers_to_dense_path(self):
        """An instance shadow on ``fabric.step`` (how perf/faults/
        telemetry attach) must be honoured cycle by cycle."""
        fabric = MultiNocFabric(small_config(), seed=5, backend="skip")
        seen = []
        class_step = type(fabric).step
        fabric.step = lambda: (seen.append(fabric.cycle), class_step(fabric))
        fabric.run(10)
        assert seen == list(range(10))
