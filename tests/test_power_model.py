"""Tests for the Orion-2-style power model."""

from __future__ import annotations

from dataclasses import replace

import pytest

from tests.conftest import small_fabric

from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.power.network_power import (
    COMPONENT_NAMES,
    compute_network_power,
    power_at_port_load,
)
from repro.power.router_power import RouterPowerModel


class TestRouterPowerModel:
    def test_crossbar_superlinear_in_width(self):
        """One wide crossbar beats four narrow ones in power (paper §5.2)."""
        wide = RouterPowerModel(512, 0.750)
        narrow = RouterPowerModel(128, 0.750)
        assert (
            wide.crossbar_energy_per_flit
            > 4 * narrow.crossbar_energy_per_flit
        )

    def test_buffer_linear_in_width(self):
        wide = RouterPowerModel(512, 0.750)
        narrow = RouterPowerModel(128, 0.750)
        assert wide.buffer_energy_per_flit == pytest.approx(
            4 * narrow.buffer_energy_per_flit
        )

    def test_dynamic_scales_with_voltage_squared(self):
        high = RouterPowerModel(128, 0.750)
        low = RouterPowerModel(128, 0.625)
        ratio = (0.625 / 0.750) ** 2
        assert low.crossbar_energy_per_flit == pytest.approx(
            high.crossbar_energy_per_flit * ratio
        )

    def test_link_crossover_penalty(self):
        single = RouterPowerModel(128, 0.625, num_subnets=1)
        multi = RouterPowerModel(128, 0.625, num_subnets=4)
        assert multi.link_energy_per_flit == pytest.approx(
            single.link_energy_per_flit * 1.12
        )

    def test_leakage_calibration_25w_both_designs(self):
        """Paper: static ~25W for 1NT-512b@0.75 and 4NT-128b@0.625."""
        single = RouterPowerModel(512, 0.750)
        multi = RouterPowerModel(128, 0.625)
        assert 64 * single.leakage_watts == pytest.approx(25.0, rel=0.02)
        assert 256 * multi.leakage_watts == pytest.approx(25.0, rel=0.02)

    def test_leakage_shares_sum_to_one(self):
        model = RouterPowerModel(128, 0.625)
        total = sum(
            model.leakage_share(c) for c in model.leakage_components()
        )
        assert total == pytest.approx(model.leakage_watts)


class TestPowerAtPortLoad:
    def test_fig07_shape(self):
        """Single > Multi@0.75 > Multi@0.625 total power."""
        single = power_at_port_load(NocConfig.single_noc_512())
        multi_hi = power_at_port_load(
            replace(NocConfig.multi_noc(4), voltage_v=0.750)
        )
        multi_lo = power_at_port_load(NocConfig.multi_noc(4))
        assert single.total_watts > multi_hi.total_watts
        assert multi_hi.total_watts > multi_lo.total_watts

    def test_fig07_absolute_band(self):
        """Stacks land near the paper's ~70 / ~65 / ~48 W."""
        single = power_at_port_load(NocConfig.single_noc_512())
        multi_lo = power_at_port_load(NocConfig.multi_noc(4))
        assert 60 < single.total_watts < 80
        assert 40 < multi_lo.total_watts < 58

    def test_monotone_in_load(self):
        config = NocConfig.single_noc_512()
        p25 = power_at_port_load(config, 0.25)
        p50 = power_at_port_load(config, 0.50)
        assert p25.total_watts < p50.total_watts
        assert p25.static_watts == pytest.approx(p50.static_watts)

    def test_zero_load_is_static_plus_clock(self):
        config = NocConfig.single_noc_512()
        idle = power_at_port_load(config, 0.0)
        assert idle.static_watts == pytest.approx(25.0, rel=0.02)
        clock = idle.components["clock"].dynamic_watts
        assert idle.dynamic_watts == pytest.approx(clock)

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            power_at_port_load(NocConfig.single_noc_512(), 1.5)

    def test_component_names_complete(self):
        breakdown = power_at_port_load(NocConfig.single_noc_512())
        assert set(breakdown.components) == set(COMPONENT_NAMES)


class TestComputeNetworkPower:
    def test_from_simulated_report(self):
        fabric = small_fabric()
        for src in range(16):
            fabric.offer(Packet(src=src, dst=(src + 7) % 16, size_bits=512))
        assert fabric.drain()
        breakdown = compute_network_power(fabric.report())
        assert breakdown.total_watts > 0
        assert breakdown.static_watts > 0
        assert breakdown.dynamic_watts > 0

    def test_more_traffic_more_dynamic_power(self):
        def run(packets):
            fabric = small_fabric()
            for i in range(packets):
                fabric.offer(
                    Packet(src=i % 16, dst=(i + 5) % 16, size_bits=512)
                )
            assert fabric.drain()
            # Equalize cycle counts for a fair per-second comparison.
            while fabric.cycle < 2000:
                fabric.step()
            return compute_network_power(fabric.report())

        low = run(20)
        high = run(200)
        assert high.dynamic_watts > low.dynamic_watts
        assert high.static_watts == pytest.approx(
            low.static_watts, rel=0.01
        )

    def test_gating_reduces_static_power(self):
        from tests.conftest import gated_config
        from repro.noc.multinoc import MultiNocFabric

        def run(gated):
            config = gated_config() if gated else None
            fabric = (
                MultiNocFabric(config, seed=4)
                if gated
                else small_fabric(seed=4)
            )
            fabric.offer(Packet(src=0, dst=15, size_bits=512))
            assert fabric.drain()
            while fabric.cycle < 1500:
                fabric.step()
            return compute_network_power(fabric.report())

        assert run(True).static_watts < run(False).static_watts

    def test_rejects_zero_cycle_report(self):
        fabric = small_fabric()
        with pytest.raises(ValueError):
            compute_network_power(fabric.report())

    def test_as_row_contains_components(self):
        breakdown = power_at_port_load(NocConfig.single_noc_512())
        row = breakdown.as_row()
        assert row["config"] == "1NT-512b"
        for name in COMPONENT_NAMES:
            assert name in row
