"""Tests for measurement-window statistics."""

from __future__ import annotations

import pytest

from repro.noc.flit import Packet
from repro.noc.stats import NetworkStats


def packet(created, injected, received, flits=1):
    p = Packet(
        src=0, dst=1, size_bits=1,
        created_cycle=created,
        injected_cycle=injected,
        received_cycle=received,
    )
    p.num_flits = flits
    return p


class TestWindows:
    def test_latency_only_counts_window_creations(self):
        stats = NetworkStats(num_nodes=4)
        stats.begin_measurement(100)
        # Created before the window: excluded from latency.
        early = packet(created=50, injected=51, received=120)
        stats.record_received(early, 120)
        inside = packet(created=110, injected=111, received=130)
        stats.record_received(inside, 130)
        stats.end_measurement(200)
        assert stats.window_latency_samples == 1
        assert stats.average_packet_latency() == 20

    def test_throughput_counts_window_receptions(self):
        stats = NetworkStats(num_nodes=4)
        stats.begin_measurement(100)
        stats.record_received(packet(90, 91, 150), 150)
        stats.end_measurement(200)
        stats.record_received(packet(150, 151, 260), 260)  # after close
        assert stats.window_received == 1
        assert stats.throughput_packets() == pytest.approx(
            1 / (4 * 100)
        )

    def test_flit_throughput(self):
        stats = NetworkStats(num_nodes=2)
        stats.begin_measurement(0)
        stats.record_received(packet(1, 2, 10, flits=4), 10)
        stats.end_measurement(10)
        assert stats.throughput_flits() == pytest.approx(4 / 20)

    def test_window_cycles_requires_closed_window(self):
        stats = NetworkStats(4)
        with pytest.raises(ValueError):
            _ = stats.window_cycles
        stats.begin_measurement(5)
        with pytest.raises(ValueError):
            _ = stats.window_cycles
        stats.end_measurement(25)
        assert stats.window_cycles == 20

    def test_offered_rate(self):
        stats = NetworkStats(num_nodes=2)
        stats.begin_measurement(0)
        for cycle in (1, 2, 3):
            stats.record_offered(packet(cycle, -1, -1), cycle)
        stats.end_measurement(10)
        assert stats.offered_rate() == pytest.approx(3 / 20)

    def test_zero_samples_latency(self):
        stats = NetworkStats(4)
        assert stats.average_packet_latency() == 0.0
        assert stats.average_network_latency() == 0.0


class TestWholeRunCounters:
    def test_counts_outside_windows(self):
        stats = NetworkStats(4)
        stats.record_received(packet(1, 2, 3), 3)
        assert stats.packets_received == 1
        assert stats.flits_received == 1
        assert stats.window_received == 0
