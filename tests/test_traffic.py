"""Tests for traffic patterns and generators."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from tests.conftest import small_fabric

from repro.noc.topology import ConcentratedMesh
from repro.traffic.generators import (
    BurstyTrafficSource,
    SyntheticTrafficSource,
)
from repro.traffic.patterns import (
    PATTERN_NAMES,
    BitComplementPattern,
    TransposePattern,
    UniformRandomPattern,
    make_pattern,
)
from repro.util.rng import DeterministicRng


class TestUniformRandom:
    def test_never_self(self):
        mesh = ConcentratedMesh(4, 4)
        pattern = UniformRandomPattern(mesh)
        rng = DeterministicRng(1)
        for src in range(mesh.num_nodes):
            for _ in range(50):
                assert pattern.destination(src, rng) != src

    def test_covers_all_destinations(self):
        mesh = ConcentratedMesh(4, 4)
        pattern = UniformRandomPattern(mesh)
        rng = DeterministicRng(2)
        seen = {pattern.destination(0, rng) for _ in range(500)}
        assert seen == set(range(1, 16))


class TestTranspose:
    def test_mirror_mapping(self):
        mesh = ConcentratedMesh(8, 8)
        pattern = TransposePattern(mesh)
        rng = DeterministicRng(1)
        src = mesh.node_at(2, 5)
        assert pattern.destination(src, rng) == mesh.node_at(5, 2)

    def test_diagonal_silent(self):
        mesh = ConcentratedMesh(8, 8)
        pattern = TransposePattern(mesh)
        rng = DeterministicRng(1)
        assert pattern.destination(mesh.node_at(3, 3), rng) is None

    def test_requires_square_mesh(self):
        with pytest.raises(ValueError):
            TransposePattern(ConcentratedMesh(4, 2))

    def test_involution(self):
        mesh = ConcentratedMesh(8, 8)
        pattern = TransposePattern(mesh)
        rng = DeterministicRng(1)
        for src in range(mesh.num_nodes):
            dst = pattern.destination(src, rng)
            if dst is not None:
                assert pattern.destination(dst, rng) == src


class TestBitComplement:
    def test_mapping(self):
        mesh = ConcentratedMesh(8, 8)
        pattern = BitComplementPattern(mesh)
        rng = DeterministicRng(1)
        assert pattern.destination(0, rng) == 63
        assert pattern.destination(63, rng) == 0

    def test_all_cross_center(self):
        mesh = ConcentratedMesh(8, 8)
        pattern = BitComplementPattern(mesh)
        rng = DeterministicRng(1)
        for src in range(mesh.num_nodes):
            dst = pattern.destination(src, rng)
            assert dst is not None
            assert dst == mesh.num_nodes - 1 - src


class TestMakePattern:
    @pytest.mark.parametrize("name", PATTERN_NAMES)
    def test_builds_all(self, name):
        mesh = ConcentratedMesh(4, 4)
        assert make_pattern(name, mesh) is not None

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_pattern("tornado", ConcentratedMesh(4, 4))


class TestSyntheticSource:
    def test_load_statistics(self):
        fabric = small_fabric()
        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load=0.1, seed=3
        )
        cycles = 2000
        for cycle in range(cycles):
            source.step(cycle)
            fabric.step()
        expected = 0.1 * cycles * fabric.mesh.num_nodes
        assert source.packets_generated == pytest.approx(
            expected, rel=0.1
        )

    def test_zero_load_generates_nothing(self):
        fabric = small_fabric()
        source = SyntheticTrafficSource(
            fabric, make_pattern("uniform", fabric.mesh), load=0.0
        )
        for cycle in range(100):
            source.step(cycle)
        assert source.packets_generated == 0

    def test_load_validation(self):
        fabric = small_fabric()
        pattern = make_pattern("uniform", fabric.mesh)
        with pytest.raises(ValueError):
            SyntheticTrafficSource(fabric, pattern, load=1.5)


class TestBurstySource:
    def test_schedule_lookup(self):
        fabric = small_fabric()
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.01), (100, 0.3), (200, 0.05)],
        )
        assert source.current_load(0) == 0.01
        assert source.current_load(99) == 0.01
        assert source.current_load(100) == 0.3
        assert source.current_load(150) == 0.3
        assert source.current_load(500) == 0.05

    def test_requires_sorted_schedule(self):
        fabric = small_fabric()
        pattern = make_pattern("uniform", fabric.mesh)
        with pytest.raises(ValueError):
            BurstyTrafficSource(fabric, pattern, [(100, 0.1), (0, 0.2)])

    def test_requires_nonempty_schedule(self):
        fabric = small_fabric()
        pattern = make_pattern("uniform", fabric.mesh)
        with pytest.raises(ValueError):
            BurstyTrafficSource(fabric, pattern, [])

    @given(st.integers(0, 10_000))
    def test_current_load_total_function(self, cycle):
        fabric = small_fabric()
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.01), (1000, 0.3), (1500, 0.01)],
        )
        assert source.current_load(cycle) in (0.01, 0.3)

    def test_next_offer_cycle_at_burst_edges(self):
        from repro.noc.backend import NEVER

        fabric = small_fabric()
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.0), (100, 0.3), (200, 0.0), (300, 0.1)],
        )
        # Inside a zero-load window: jump to the burst's first cycle.
        assert source.next_offer_cycle(0) == 100
        assert source.next_offer_cycle(99) == 100
        # At and inside the burst: act immediately.
        assert source.next_offer_cycle(100) == 100
        assert source.next_offer_cycle(199) == 199
        # The zero-load window between bursts skips to the next one.
        assert source.next_offer_cycle(200) == 300
        assert source.next_offer_cycle(299) == 300
        assert source.next_offer_cycle(5000) == 5000
        assert NEVER not in {
            source.next_offer_cycle(c) for c in (0, 150, 250, 400)
        }

    def test_next_offer_cycle_trailing_zero_is_never(self):
        from repro.noc.backend import NEVER

        fabric = small_fabric()
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.2), (50, 0.0)],
        )
        assert source.next_offer_cycle(49) == 49
        # After the last burst the schedule is zero forever.
        assert source.next_offer_cycle(50) == NEVER
        assert source.next_offer_cycle(9999) == NEVER

    def test_next_offer_cycle_all_zero_schedule(self):
        from repro.noc.backend import NEVER

        fabric = small_fabric()
        source = BurstyTrafficSource(
            fabric,
            make_pattern("uniform", fabric.mesh),
            [(0, 0.0)],
        )
        assert source.next_offer_cycle(0) == NEVER


class TestHotspot:
    def test_hotspot_bias(self):
        from repro.traffic.patterns import HotspotPattern

        mesh = ConcentratedMesh(8, 8)
        pattern = HotspotPattern(mesh, hotspot_fraction=0.5, num_hotspots=2)
        rng = DeterministicRng(3)
        hits = sum(
            1
            for _ in range(1000)
            if pattern.destination(0, rng) in pattern.hotspots
        )
        # >= hotspot fraction (uniform fallback can also hit them).
        assert hits > 400

    def test_zero_fraction_is_uniform(self):
        from repro.traffic.patterns import HotspotPattern

        mesh = ConcentratedMesh(4, 4)
        pattern = HotspotPattern(mesh, hotspot_fraction=0.0)
        rng = DeterministicRng(3)
        seen = {pattern.destination(0, rng) for _ in range(400)}
        assert len(seen) == 15

    def test_hotspots_are_centre_nodes(self):
        from repro.traffic.patterns import HotspotPattern

        mesh = ConcentratedMesh(8, 8)
        pattern = HotspotPattern(mesh, num_hotspots=4)
        for node in pattern.hotspots:
            x, y = mesh.coordinates(node)
            assert 2 <= x <= 5 and 2 <= y <= 5

    def test_validation(self):
        from repro.traffic.patterns import HotspotPattern

        mesh = ConcentratedMesh(4, 4)
        with pytest.raises(ValueError):
            HotspotPattern(mesh, hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotPattern(mesh, num_hotspots=0)

    def test_make_pattern_builds_hotspot(self):
        mesh = ConcentratedMesh(4, 4)
        from repro.traffic.patterns import HotspotPattern

        assert isinstance(make_pattern("hotspot", mesh), HotspotPattern)
