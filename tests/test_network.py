"""Tests for subnet networks: delay line, counters, ejection."""

from __future__ import annotations

from repro.noc.config import NocConfig
from repro.noc.flit import MessageClass, Packet
from repro.noc.multinoc import MultiNocFabric


def line_fabric(cols=4):
    return MultiNocFabric(
        NocConfig(
            mesh_cols=cols, mesh_rows=1, num_subnets=1,
            link_width_bits=128, voltage_v=0.625,
        ),
        seed=2,
    )


def send_packet(fabric, src, dst, size_bits=128):
    packet = Packet(
        src=src, dst=dst, size_bits=size_bits,
        message_class=MessageClass.SYNTHETIC,
    )
    fabric.offer(packet)
    return packet


class TestZeroLoadLatency:
    def test_single_flit_latency_matches_model(self):
        """Latency = inject pipeline + hops * hop_cycles + SA cycles."""
        fabric = line_fabric(cols=4)
        packet = send_packet(fabric, 0, 3)
        for _ in range(40):
            fabric.step()
            if packet.received_cycle >= 0:
                break
        assert packet.received_cycle >= 0
        timing = fabric.config.timing
        hops = 3
        # Injection takes pipeline_cycles; each hop adds hop_cycles plus
        # one SA cycle at the landing router; ejection is immediate.
        expected_max = (
            timing.pipeline_cycles + (hops + 1) * (timing.hop_cycles + 1)
        )
        assert packet.latency <= expected_max

    def test_farther_destination_takes_longer(self):
        fabric1 = line_fabric(cols=8)
        near = send_packet(fabric1, 0, 1)
        fabric2 = line_fabric(cols=8)
        far = send_packet(fabric2, 0, 7)
        for fabric in (fabric1, fabric2):
            for _ in range(60):
                fabric.step()
        assert far.latency > near.latency


class TestCounters:
    def test_activity_counters_consistent(self):
        fabric = line_fabric(cols=4)
        for dst in (1, 2, 3):
            send_packet(fabric, 0, dst)
        assert fabric.drain()
        counters = fabric.subnets[0].counters
        assert counters.flits_injected == 3
        assert counters.flits_ejected == 3
        assert counters.packets_injected == 3
        assert counters.packets_ejected == 3
        # Each flit is written once per router it visits (including the
        # injection landing) and read once per departure.
        assert counters.buffer_writes == counters.buffer_reads
        # Hops: 1 + 2 + 3 = 6 link traversals.
        assert counters.link_traversals == 6
        # Crossbar: one traversal per forward plus one per ejection.
        assert counters.crossbar_traversals == 6 + 3

    def test_multi_flit_packet_counts_flits(self):
        fabric = line_fabric(cols=2)
        send_packet(fabric, 0, 1, size_bits=512)  # 4 flits at 128b
        assert fabric.drain()
        counters = fabric.subnets[0].counters
        assert counters.flits_injected == 4
        assert counters.packets_injected == 1
        assert counters.flits_ejected == 4

    def test_flits_in_network_returns_to_zero(self):
        fabric = line_fabric()
        for dst in (1, 2):
            send_packet(fabric, 0, dst, size_bits=384)
        assert fabric.drain()
        assert all(n.flits_in_network == 0 for n in fabric.subnets)
        assert all(n.is_idle for n in fabric.subnets)


class TestActiveRouterCount:
    def test_all_active_without_gating(self):
        fabric = line_fabric()
        assert fabric.subnets[0].active_router_count() == 4
