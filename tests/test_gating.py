"""Tests for the power-gating controller and its accounting."""

from __future__ import annotations

from tests.conftest import gated_config, small_config

from repro.core.gating import GatingPolicy, GatingStats
from repro.noc.config import NocConfig, PowerGatingConfig
from repro.noc.multinoc import MultiNocFabric
from repro.noc.router import PowerState


def gated_fabric(**overrides):
    return MultiNocFabric(gated_config(**overrides), seed=3)


class TestPolicyResolution:
    def test_disabled(self):
        assert GatingPolicy.resolve(small_config()) == GatingPolicy.NONE

    def test_catnap_multi_uses_rcs(self):
        assert (
            GatingPolicy.resolve(gated_config()) == GatingPolicy.RCS
        )

    def test_single_noc_uses_baseline(self):
        config = gated_config(num_subnets=1, link_width_bits=256)
        assert GatingPolicy.resolve(config) == GatingPolicy.BASELINE

    def test_round_robin_uses_baseline(self):
        config = gated_config(selection_policy="round_robin")
        assert GatingPolicy.resolve(config) == GatingPolicy.BASELINE


class TestSleepTransitions:
    def test_idle_higher_subnets_sleep_after_idle_detect(self):
        fabric = gated_fabric()
        idle_detect = fabric.config.gating.idle_detect_cycles
        for _ in range(idle_detect + 3):
            fabric.step()
        subnet1 = fabric.subnets[1]
        assert all(
            r.power_state == PowerState.SLEEP for r in subnet1.routers
        )

    def test_subnet0_never_sleeps_under_rcs_policy(self):
        fabric = gated_fabric()
        for _ in range(50):
            fabric.step()
        subnet0 = fabric.subnets[0]
        assert all(
            r.power_state == PowerState.ACTIVE for r in subnet0.routers
        )

    def test_baseline_gates_everything(self):
        fabric = gated_fabric(
            num_subnets=1, link_width_bits=256,
        )
        for _ in range(50):
            fabric.step()
        assert all(
            r.power_state == PowerState.SLEEP
            for r in fabric.subnets[0].routers
        )


class TestWakeup:
    def test_wake_request_transitions_through_wakeup_state(self):
        fabric = gated_fabric()
        for _ in range(20):
            fabric.step()
        router = fabric.subnets[1].routers[5]
        assert router.power_state == PowerState.SLEEP
        fabric.gating.request_wakeup(router)
        fabric.step()
        assert router.power_state == PowerState.WAKEUP
        for _ in range(fabric.config.gating.wakeup_cycles + 1):
            fabric.step()
        assert router.power_state == PowerState.ACTIVE

    def test_wakeup_takes_t_wakeup_cycles(self):
        fabric = gated_fabric()
        for _ in range(20):
            fabric.step()
        router = fabric.subnets[1].routers[0]
        fabric.gating.request_wakeup(router)
        fabric.step()
        waited = 0
        while router.power_state != PowerState.ACTIVE:
            fabric.step()
            waited += 1
            assert waited < 20
        assert waited >= fabric.config.gating.wakeup_cycles - 1


class TestCscAccounting:
    def test_long_sleep_compensated(self):
        fabric = gated_fabric()
        for _ in range(200):
            fabric.step()
        fabric.gating.finalize(fabric.cycle)
        stats = fabric.gating.stats[1]
        assert stats.sleep_periods >= fabric.mesh.num_nodes
        assert stats.compensated_sleep_cycles > 0
        # Each period's CSC is its length minus break-even.
        breakeven = fabric.config.gating.breakeven_cycles
        assert (
            stats.compensated_sleep_cycles
            <= stats.sleep_cycles - 0  # csc can never exceed sleep cycles
        )
        assert stats.compensated_sleep_cycles <= (
            stats.sleep_cycles
        )

    def test_short_sleep_not_compensated(self):
        stats = GatingStats()
        from repro.core.gating import PowerGatingController
        from repro.core.monitor import CongestionMonitor
        from repro.noc.topology import ConcentratedMesh

        config = gated_config()
        fabric = MultiNocFabric(config, seed=1)
        controller = fabric.gating
        router = fabric.subnets[1].routers[0]
        # Sleep at cycle 100, wake at 105 (< breakeven 12).
        controller._sleep(router, 100)
        controller._begin_wakeup(router, 105, controller.stats[1])
        assert controller.stats[1].short_sleep_periods == 1
        assert controller.stats[1].compensated_sleep_cycles == 0

    def test_finalize_idempotent(self):
        fabric = gated_fabric()
        for _ in range(100):
            fabric.step()
        fabric.gating.finalize(fabric.cycle)
        csc = fabric.gating.total_stats().compensated_sleep_cycles
        fabric.gating.finalize(fabric.cycle)
        assert (
            fabric.gating.total_stats().compensated_sleep_cycles == csc
        )

    def test_state_cycles_sum_to_router_cycles(self):
        fabric = gated_fabric()
        cycles = 150
        for _ in range(cycles):
            fabric.step()
        for subnet, stats in enumerate(fabric.gating.stats):
            assert stats.total_cycles == cycles * fabric.mesh.num_nodes


class TestGatingStats:
    def test_merge(self):
        a = GatingStats(active_cycles=10, sleep_cycles=5, sleep_periods=1)
        b = GatingStats(active_cycles=1, wakeup_cycles=2)
        merged = a.merge(b)
        assert merged.active_cycles == 11
        assert merged.sleep_cycles == 5
        assert merged.wakeup_cycles == 2

    def test_csc_fraction_zero_when_empty(self):
        assert GatingStats().csc_fraction() == 0.0


class TestDisabledGating:
    def test_none_policy_counts_active_cycles(self):
        fabric = MultiNocFabric(small_config(), seed=1)
        for _ in range(10):
            fabric.step()
        stats = fabric.gating.total_stats()
        assert stats.active_cycles == 10 * fabric.mesh.num_nodes * 2
        assert stats.sleep_cycles == 0
