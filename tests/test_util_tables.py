"""Tests for table rendering helpers."""

from __future__ import annotations

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_title_included(self):
        out = format_table([{"a": 1}], title="T")
        assert out.startswith("T\n")

    def test_columns_subset_and_order(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        lines = out.splitlines()
        assert lines[0].strip() == "b"
        assert "a" not in lines[0]

    def test_float_precision(self):
        out = format_table([{"x": 1.23456}], precision=2)
        assert "1.23" in out and "1.235" not in out

    def test_alignment_width(self):
        out = format_table([{"name": "a"}, {"name": "longer"}])
        lines = out.splitlines()
        assert len(lines[1]) == len("longer")

    def test_missing_keys_render_empty(self):
        out = format_table(
            [{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"]
        )
        assert "3" in out

    def test_bool_rendering(self):
        out = format_table([{"flag": True}])
        assert "True" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series([1, 2], [3.0, 4.0], "x", "y")
        assert "x" in out and "y" in out and "4.000" in out
