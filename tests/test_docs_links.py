"""Docs link checker: no dead relative links in docs/, README, DESIGN.

CI runs this as its own step; it also rides in tier-1 so a page rename
fails fast locally.  Only repository-relative link targets are
checked — external URLs and pure in-page anchors are out of scope.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

PAGES = sorted(REPO.glob("docs/*.md")) + [
    REPO / "README.md",
    REPO / "DESIGN.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_targets(page: Path) -> list[str]:
    targets = []
    for match in _LINK.finditer(page.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append(target.split("#", 1)[0])
    return targets


def test_pages_exist():
    assert len(PAGES) >= 8  # six docs pages + README + DESIGN


def test_no_dead_relative_links():
    dead = []
    for page in PAGES:
        for target in _relative_targets(page):
            if not (page.parent / target).exists():
                dead.append(f"{page.relative_to(REPO)} -> {target}")
    assert not dead, "dead relative links:\n" + "\n".join(dead)
